package vcluster

import (
	"testing"

	"microslip/internal/balance"
)

// TestCheckpointIntervalChargesCheckpointTime: periodic coordinated
// checkpoints must cost wall time and show up in the profile's
// checkpoint column — and nowhere else.
func TestCheckpointIntervalChargesCheckpointTime(t *testing.T) {
	clean := mustRun(t, DefaultConfig(balance.NoRemap{}, Dedicated(6), 60))
	cfg := DefaultConfig(balance.NoRemap{}, Dedicated(6), 60)
	cfg.CheckpointInterval = 10
	ck := mustRun(t, cfg)

	if ck.Profile.Sum().Checkpoint <= 0 {
		t.Fatal("checkpointing charged no checkpoint time")
	}
	if clean.Profile.Sum().Checkpoint != 0 {
		t.Fatal("run without checkpointing charged checkpoint time")
	}
	if ck.TotalTime <= clean.TotalTime {
		t.Errorf("checkpointed run %.3f s not slower than clean %.3f s", ck.TotalTime, clean.TotalTime)
	}
	if comp, want := ck.Profile.Sum().Computation, clean.Profile.Sum().Computation; comp != want {
		t.Errorf("checkpointing changed computation time %v -> %v", want, comp)
	}
}

// TestNodeDeathShrinksAndFinishes is the recovery path end to end: a
// death mid-run discards the phases past the last commit, shrinks the
// cluster, and the survivors finish the whole problem.
func TestNodeDeathShrinksAndFinishes(t *testing.T) {
	const nodes, phases = 8, 60
	clean := mustRun(t, DefaultConfig(balance.NoRemap{}, Dedicated(nodes), phases))

	cfg := DefaultConfig(balance.NoRemap{}, Dedicated(nodes), phases)
	cfg.CheckpointInterval = 10
	cfg.NodeDeaths = []NodeDeath{{Node: 3, Phase: 33}}
	res := mustRun(t, cfg)

	if res.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", res.Deaths)
	}
	if res.ReplayedPhases != 3 { // died at 33, last commit at 30
		t.Errorf("ReplayedPhases = %d, want 3", res.ReplayedPhases)
	}
	if res.RecoveryTime != cfg.Costs.RecoveryBase {
		t.Errorf("RecoveryTime = %v, want %v", res.RecoveryTime, cfg.Costs.RecoveryBase)
	}
	if got := len(res.FinalPartition.Counts()); got != nodes-1 {
		t.Errorf("final partition covers %d nodes, want %d survivors", got, nodes-1)
	}
	if planes := 0; true {
		for _, c := range res.FinalPartition.Counts() {
			planes += c
		}
		if planes != cfg.TotalPlanes {
			t.Errorf("survivors own %d planes, want %d", planes, cfg.TotalPlanes)
		}
	}
	// Losing a node and replaying phases must cost real time.
	if res.TotalTime <= clean.TotalTime {
		t.Errorf("run with a death %.3f s not slower than clean %.3f s", res.TotalTime, clean.TotalTime)
	}
	// Reruns are deterministic.
	again := mustRun(t, cfg)
	if again.TotalTime != res.TotalTime || again.ReplayedPhases != res.ReplayedPhases {
		t.Errorf("rerun diverged: %.6f/%d vs %.6f/%d",
			res.TotalTime, res.ReplayedPhases, again.TotalTime, again.ReplayedPhases)
	}
}

// TestNodeDeathWithoutCheckpointReplaysFromZero: with no checkpoints
// there is nothing to restore — a death throws the whole prefix away.
func TestNodeDeathWithoutCheckpointReplaysFromZero(t *testing.T) {
	cfg := DefaultConfig(balance.NoRemap{}, Dedicated(5), 40)
	cfg.NodeDeaths = []NodeDeath{{Node: 0, Phase: 25}}
	res := mustRun(t, cfg)
	if res.ReplayedPhases != 25 {
		t.Errorf("ReplayedPhases = %d, want 25 (full restart)", res.ReplayedPhases)
	}
	if res.Deaths != 1 || len(res.FinalPartition.Counts()) != 4 {
		t.Errorf("Deaths %d, final partition %v", res.Deaths, res.FinalPartition.Counts())
	}
}

// TestMultipleDeathsShrinkProgressively: each death removes one more
// node; the run still covers every plane at the end.
func TestMultipleDeathsShrinkProgressively(t *testing.T) {
	cfg := DefaultConfig(balance.NewFiltered(4000), Dedicated(6), 80)
	cfg.CheckpointInterval = 8
	cfg.NodeDeaths = []NodeDeath{{Node: 1, Phase: 20}, {Node: 4, Phase: 50}}
	res := mustRun(t, cfg)
	if res.Deaths != 2 {
		t.Fatalf("Deaths = %d, want 2", res.Deaths)
	}
	counts := res.FinalPartition.Counts()
	if len(counts) != 4 {
		t.Fatalf("final partition %v, want 4 survivors", counts)
	}
	planes := 0
	for _, c := range counts {
		planes += c
	}
	if planes != cfg.TotalPlanes {
		t.Errorf("survivors own %d planes, want %d", planes, cfg.TotalPlanes)
	}
	if res.RecoveryTime != 2*cfg.Costs.RecoveryBase {
		t.Errorf("RecoveryTime = %v, want %v", res.RecoveryTime, 2*cfg.Costs.RecoveryBase)
	}
}

func TestNodeDeathValidation(t *testing.T) {
	base := func() Config { return DefaultConfig(balance.NoRemap{}, Dedicated(3), 20) }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"node out of range", func(c *Config) { c.NodeDeaths = []NodeDeath{{Node: 3, Phase: 5}} }},
		{"negative node", func(c *Config) { c.NodeDeaths = []NodeDeath{{Node: -1, Phase: 5}} }},
		{"phase out of range", func(c *Config) { c.NodeDeaths = []NodeDeath{{Node: 0, Phase: 20}} }},
		{"duplicate node", func(c *Config) {
			c.NodeDeaths = []NodeDeath{{Node: 1, Phase: 5}, {Node: 1, Phase: 10}}
		}},
		{"no survivors", func(c *Config) {
			c.NodeDeaths = []NodeDeath{{Node: 0, Phase: 5}, {Node: 1, Phase: 6}, {Node: 2, Phase: 7}}
		}},
		{"negative checkpoint interval", func(c *Config) { c.CheckpointInterval = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid configuration accepted")
			}
		})
	}
}

// TestTimelineSpansDeathEpochs: with deaths and timeline recording on,
// the per-phase record covers every executed phase (including the
// replays) and stays monotonic across epoch boundaries.
func TestTimelineSpansDeathEpochs(t *testing.T) {
	cfg := DefaultConfig(balance.NoRemap{}, Dedicated(4), 30)
	cfg.CheckpointInterval = 6
	cfg.NodeDeaths = []NodeDeath{{Node: 2, Phase: 15}}
	cfg.RecordTimeline = true
	res := mustRun(t, cfg)
	want := 15 + (30 - 12) // doomed epoch + survivor epoch (resume at 12)
	if len(res.Timeline.PhaseEnd) != want {
		t.Fatalf("timeline holds %d phases, want %d", len(res.Timeline.PhaseEnd), want)
	}
	for i := 1; i < len(res.Timeline.PhaseEnd); i++ {
		if res.Timeline.PhaseEnd[i] < res.Timeline.PhaseEnd[i-1] {
			t.Fatalf("timeline not monotonic at %d: %v < %v", i,
				res.Timeline.PhaseEnd[i], res.Timeline.PhaseEnd[i-1])
		}
	}
}
