package vcluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstantTrace(t *testing.T) {
	c := Constant(0.5)
	if c.SpeedAt(0) != 0.5 || c.SpeedAt(1e9) != 0.5 {
		t.Error("Constant speed varies")
	}
	if !math.IsInf(c.NextChange(0), 1) {
		t.Error("Constant has a change point")
	}
}

func TestDutyCycleTrace(t *testing.T) {
	d := DutyCycle{Period: 10, Busy: 4, BusySpeed: 0.5}
	cases := map[float64]float64{0: 0.5, 3.9: 0.5, 4.0: 1, 9.9: 1, 10: 0.5, 13.9: 0.5, 14: 1}
	for tm, want := range cases {
		if got := d.SpeedAt(tm); got != want {
			t.Errorf("SpeedAt(%v) = %v, want %v", tm, got, want)
		}
	}
	if got := d.NextChange(1); got != 4 {
		t.Errorf("NextChange(1) = %v, want 4", got)
	}
	if got := d.NextChange(5); got != 10 {
		t.Errorf("NextChange(5) = %v, want 10", got)
	}
	if got := d.NextChange(12); got != 14 {
		t.Errorf("NextChange(12) = %v, want 14", got)
	}
}

func TestScheduleTrace(t *testing.T) {
	s := NewSchedule([]Interval{
		{Start: 10, End: 12, Speed: 0.5},
		{Start: 30, End: 31, Speed: 0.25},
	})
	cases := map[float64]float64{0: 1, 10: 0.5, 11.9: 0.5, 12: 1, 30.5: 0.25, 31: 1}
	for tm, want := range cases {
		if got := s.SpeedAt(tm); got != want {
			t.Errorf("SpeedAt(%v) = %v, want %v", tm, got, want)
		}
	}
	if got := s.NextChange(0); got != 10 {
		t.Errorf("NextChange(0) = %v, want 10", got)
	}
	if got := s.NextChange(10.5); got != 12 {
		t.Errorf("NextChange(10.5) = %v, want 12", got)
	}
	if got := s.NextChange(31); !math.IsInf(got, 1) {
		t.Errorf("NextChange(31) = %v, want +Inf", got)
	}
}

func TestScheduleRejectsOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping intervals accepted")
		}
	}()
	NewSchedule([]Interval{{Start: 0, End: 5, Speed: 0.5}, {Start: 4, End: 6, Speed: 0.5}})
}

func TestWorkDurationConstant(t *testing.T) {
	if got := WorkDuration(Constant(1), 100, 2.5); got != 2.5 {
		t.Errorf("full speed: %v, want 2.5", got)
	}
	if got := WorkDuration(Constant(0.5), 0, 1); got != 2 {
		t.Errorf("half speed: %v, want 2", got)
	}
	if got := WorkDuration(Constant(1), 0, 0); got != 0 {
		t.Errorf("zero work: %v", got)
	}
}

func TestWorkDurationAcrossBoundary(t *testing.T) {
	// Busy [0,4) at 0.5: starting at 3 with 1.0 work: 1s busy does 0.5
	// work, remaining 0.5 at full speed takes 0.5 -> total 1.5.
	d := DutyCycle{Period: 10, Busy: 4, BusySpeed: 0.5}
	if got := WorkDuration(d, 3, 1.0); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("boundary crossing: %v, want 1.5", got)
	}
	// Work spanning several periods.
	got := WorkDuration(d, 0, 16.0)
	// Each 10s period delivers 4*0.5 + 6*1 = 8 work: 16 work = 20 s.
	if math.Abs(got-20) > 1e-9 {
		t.Errorf("multi-period: %v, want 20", got)
	}
}

// Property: WorkDuration is additive — doing w1 then w2 from the
// intermediate time equals doing w1+w2 at once.
func TestWorkDurationAdditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := DutyCycle{Period: 10, Busy: 1 + 8*rng.Float64(), BusySpeed: 0.2 + 0.7*rng.Float64()}
		start := rng.Float64() * 30
		w1 := rng.Float64() * 5
		w2 := rng.Float64() * 5
		d1 := WorkDuration(d, start, w1)
		d2 := WorkDuration(d, start+d1, w2)
		dAll := WorkDuration(d, start, w1+w2)
		return math.Abs((d1+d2)-dAll) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: duration is at least work (speed <= 1) and at most
// work/minSpeed.
func TestWorkDurationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		minSpeed := 0.2 + 0.5*rng.Float64()
		d := DutyCycle{Period: 10, Busy: rng.Float64() * 10, BusySpeed: minSpeed}
		w := rng.Float64() * 20
		got := WorkDuration(d, rng.Float64()*50, w)
		return got >= w-1e-9 && got <= w/minSpeed+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContentionShare(t *testing.T) {
	if got := ContentionShare(0); got != 1 {
		t.Errorf("share(0) = %v", got)
	}
	if got := ContentionShare(0.3); got != 0.5 {
		t.Errorf("share(0.3) = %v, want 0.5 (fair-share plateau)", got)
	}
	if got := ContentionShare(0.6); got != 0.5 {
		t.Errorf("share(0.6) = %v, want 0.5", got)
	}
	if got := ContentionShare(1); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("share(1) = %v, want 1/3", got)
	}
	// Monotone non-increasing.
	prev := 2.0
	for d := 0.0; d <= 1.0; d += 0.01 {
		s := ContentionShare(d)
		if s > prev+1e-12 {
			t.Fatalf("share not monotone at %v", d)
		}
		prev = s
	}
}

func TestWorkloadConstructors(t *testing.T) {
	tr := FixedSlowNodes(10, []int{3, 7})
	if tr[3].SpeedAt(0) >= 1 || tr[7].SpeedAt(5) >= 1 || tr[0].SpeedAt(0) != 1 {
		t.Error("FixedSlowNodes speeds wrong")
	}
	tr = DutyCycleNode(5, 2, 0.5)
	if tr[2].SpeedAt(1) != 0.5 || tr[2].SpeedAt(6) != 1 {
		t.Error("DutyCycleNode trace wrong")
	}
	if tr := DutyCycleNode(5, 2, 0); tr[2].SpeedAt(0) != 1 {
		t.Error("zero duty should be dedicated")
	}
	for name, fn := range map[string]func(){
		"slow index":  func() { FixedSlowNodes(4, []int{9}) },
		"duty range":  func() { DutyCycleNode(4, 0, 1.5) },
		"spike range": func() { TransientSpikes(4, 0, 100, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSpreadSlowNodes(t *testing.T) {
	if got := SpreadSlowNodes(20, 1); got[0] != 10 {
		t.Errorf("1 slow node at %d, want center 10", got[0])
	}
	got := SpreadSlowNodes(20, 2)
	if got[0] != 5 || got[1] != 15 {
		t.Errorf("2 slow nodes at %v, want [5 15]", got)
	}
	got = SpreadSlowNodes(20, 5)
	for i := 1; i < len(got); i++ {
		if got[i]-got[i-1] < 3 {
			t.Errorf("slow nodes too close: %v", got)
		}
	}
}

func TestTransientSpikesOneNodePerWindow(t *testing.T) {
	traces := TransientSpikes(10, 2, 100, 7)
	for w := 0; w < 10; w++ {
		busy := 0
		for _, tr := range traces {
			if tr.SpeedAt(float64(w)*DisturbancePeriod+0.5) < 1 {
				busy++
			}
		}
		if busy != 1 {
			t.Errorf("window %d has %d busy nodes, want 1", w, busy)
		}
	}
	// Deterministic for equal seeds.
	again := TransientSpikes(10, 2, 100, 7)
	for i := range traces {
		for tm := 0.0; tm < 100; tm += 0.7 {
			if traces[i].SpeedAt(tm) != again[i].SpeedAt(tm) {
				t.Fatal("TransientSpikes not deterministic")
			}
		}
	}
}
