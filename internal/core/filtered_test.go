package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microslip/internal/decomp"
)

const plane = 4000 // paper's 200x20 plane

func cfg() Config     { return DefaultConfig(plane) }
func consCfg() Config { return ConservativeConfig(plane) }

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := consCfg().Validate(); err != nil {
		t.Fatalf("conservative config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.HistoryK = 0 },
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.PlanePoints = 0 },
		func(c *Config) { c.ThresholdPoints = -1 },
		func(c *Config) { c.MinKeepPlanes = 0 },
		func(c *Config) { c.Alpha = 0.5 },
		func(c *Config) { c.KappaCap = 0.5 },
	}
	for i, mutate := range bad {
		c := cfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBalancedClusterIsQuiet(t *testing.T) {
	planes := []int{20, 20, 20, 20}
	times := []float64{0.4, 0.4, 0.4, 0.4}
	desires := cfg().DecideAll(planes, times)
	for i, d := range desires {
		if d.ToLeft != 0 || d.ToRight != 0 {
			t.Errorf("node %d wants to move %+v in a balanced cluster", i, d)
		}
	}
}

// A persistently slow node drains aggressively under the filtered
// scheme (over-redistribution), much faster than under conservative
// shipping.
func TestSlowNodeDrains(t *testing.T) {
	planes := []int{20, 20, 20}
	times := []float64{0.4, 1.2, 0.4} // node 1 is 3x slow

	filtered := cfg().DecideAll(planes, times)
	if filtered[1].ToLeft == 0 || filtered[1].ToRight == 0 {
		t.Fatalf("slow node did not shed both ways: %+v", filtered[1])
	}
	shedF := filtered[1].ToLeft + filtered[1].ToRight
	// Full drain to MinKeep, modulo one plane of symmetric-trim rounding.
	if shedF < 20-cfg().MinKeepPlanes-1 {
		t.Errorf("filtered shed %d planes, want near-full drain (>= 18)", shedF)
	}
	// Fast neighbors must not feed the slow node.
	if filtered[0].ToRight != 0 || filtered[2].ToLeft != 0 {
		t.Errorf("fast nodes feeding the slow node: %+v %+v", filtered[0], filtered[2])
	}

	cons := consCfg().DecideAll(planes, times)
	shedC := cons[1].ToLeft + cons[1].ToRight
	if shedC == 0 {
		t.Fatal("conservative shed nothing")
	}
	if shedC >= shedF {
		t.Errorf("conservative shed %d >= filtered %d; over-redistribution has no effect", shedC, shedF)
	}
}

func TestFastToSlowFilterBlocks(t *testing.T) {
	// Node 1 is half speed AND holds fewer planes than its proportional
	// share, so the balance target would move points to it, but the
	// filter forbids feeding a slow node. (Fast nodes: 0.01 s/plane;
	// node 1: 0.02 s/plane.)
	planes := []int{30, 1, 30}
	times := []float64{0.30, 0.02, 0.30}
	desires := cfg().DecideAll(planes, times)
	if desires[0].ToRight != 0 {
		t.Errorf("node 0 ships %d planes to a slower node", desires[0].ToRight)
	}
	if desires[2].ToLeft != 0 {
		t.Errorf("node 2 ships %d planes to a slower node", desires[2].ToLeft)
	}
	// With the filter disabled, the transfer fires (the general
	// load-balancing behaviour the paper argues against).
	open := cfg()
	open.FastToSlowFilter = false
	desires = open.DecideAll(planes, times)
	if desires[0].ToRight == 0 && desires[2].ToLeft == 0 {
		t.Error("disabling the filter still moves nothing; filter test is vacuous")
	}
}

func TestThresholdSuppressesSmallMoves(t *testing.T) {
	// 5% imbalance on equal speeds: target shift is below one plane.
	planes := []int{21, 20, 20}
	times := []float64{0.42, 0.40, 0.40}
	desires := cfg().DecideAll(planes, times)
	for i, d := range desires {
		if d.ToLeft != 0 || d.ToRight != 0 {
			t.Errorf("node %d moved %+v for a sub-threshold imbalance", i, d)
		}
	}
}

func TestDecideNodeUnknownTimes(t *testing.T) {
	w := Window{HasRight: true, Points: 20 * plane, PointsRight: 20 * plane, Time: 0, TimeRight: 0.4}
	l, r := cfg().DecideNode(w)
	if l != 0 || r != 0 {
		t.Errorf("decided %d,%d with no self measurement", l, r)
	}
	w = Window{HasRight: true, Points: 20 * plane, PointsRight: 20 * plane, Time: 2.0, TimeRight: 0}
	l, r = cfg().DecideNode(w)
	if r != 0 {
		t.Errorf("decided to ship %d planes to a neighbor with unknown speed", r)
	}
	_ = l
}

func TestResolveConflict(t *testing.T) {
	desires := []Desire{{ToRight: 5}, {ToLeft: 2}}
	ts := cfg().Resolve(desires, []int{10, 10})
	if len(ts) != 1 || ts[0].From != 0 || ts[0].To != 1 || ts[0].Planes != 3 {
		t.Errorf("conflict resolution produced %+v, want net 3 planes 0->1", ts)
	}
	// Exactly opposite desires cancel entirely.
	desires = []Desire{{ToRight: 4}, {ToLeft: 4}}
	ts = cfg().Resolve(desires, []int{10, 10})
	if len(ts) != 0 {
		t.Errorf("equal opposite desires produced %+v", ts)
	}
}

func TestResolveCapsAtMinKeep(t *testing.T) {
	desires := []Desire{{}, {ToLeft: 4, ToRight: 4}, {}}
	ts := cfg().Resolve(desires, []int{5, 3, 5})
	total := 0
	for _, tr := range ts {
		if tr.From != 1 {
			t.Errorf("unexpected transfer %+v", tr)
		}
		total += tr.Planes
	}
	if total > 2 {
		t.Errorf("node with 3 planes shipped %d, budget is 2", total)
	}
}

// Property: for random cluster states, resolved transfers always apply
// cleanly — planes conserved, every node keeps MinKeepPlanes.
func TestResolvedTransfersAlwaysApply(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(10)
		planes := make([]int, p)
		times := make([]float64, p)
		total := 0
		for i := range planes {
			planes[i] = 1 + rng.Intn(40)
			total += planes[i]
			times[i] = 0.1 + rng.Float64()*2
		}
		c := cfg()
		if rng.Intn(2) == 0 {
			c = consCfg()
		}
		desires := c.DecideAll(planes, times)
		ts := c.Resolve(desires, planes)
		// Build the matching partition and apply.
		starts := make([]int, p+1)
		for i := 0; i < p; i++ {
			starts[i+1] = starts[i] + planes[i]
		}
		pt := decomp.Partition{NX: total, Starts: starts}
		next, err := pt.Apply(ts, c.MinKeepPlanes)
		if err != nil {
			t.Logf("seed %d: apply failed: %v (transfers %+v, planes %v, times %v)", seed, err, ts, planes, times)
			return false
		}
		sum := 0
		for r := 0; r < p; r++ {
			sum += next.Count(r)
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: decisions are mirror-symmetric — reversing the array
// reverses the desires.
func TestDecideAllMirrorSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(8)
		planes := make([]int, p)
		times := make([]float64, p)
		for i := range planes {
			planes[i] = 1 + rng.Intn(40)
			times[i] = 0.1 + rng.Float64()*2
		}
		rev := func(d []Desire) []Desire {
			out := make([]Desire, len(d))
			for i, v := range d {
				out[len(d)-1-i] = Desire{ToLeft: v.ToRight, ToRight: v.ToLeft}
			}
			return out
		}
		planesR := make([]int, p)
		timesR := make([]float64, p)
		for i := 0; i < p; i++ {
			planesR[i] = planes[p-1-i]
			timesR[i] = times[p-1-i]
		}
		a := cfg().DecideAll(planes, times)
		b := rev(cfg().DecideAll(planesR, timesR))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Iterating decide/resolve/apply rounds from a one-slow-node start must
// converge: the slow node ends near MinKeep and the excess diffuses
// outward, leaving fast nodes roughly even.
func TestFilteredConvergence(t *testing.T) {
	const p = 20
	planes := make([]int, p)
	for i := range planes {
		planes[i] = 20
	}
	compPerPlane := 0.0196 // seconds, calibrated scale (irrelevant here)
	slow := 9
	c := cfg()
	for round := 0; round < 40; round++ {
		times := make([]float64, p)
		for i := range times {
			speed := 1.0
			if i == slow {
				speed = 1.0 / 3.0
			}
			times[i] = float64(planes[i]) * compPerPlane / speed
		}
		ts := c.Resolve(c.DecideAll(planes, times), planes)
		for _, tr := range ts {
			planes[tr.From] -= tr.Planes
			planes[tr.To] += tr.Planes
		}
	}
	if planes[slow] > 2 {
		t.Errorf("slow node still holds %d planes after 40 rounds", planes[slow])
	}
	total, maxP, minP := 0, 0, 1<<30
	for i, n := range planes {
		total += n
		if i == slow {
			continue
		}
		if n > maxP {
			maxP = n
		}
		if n < minP {
			minP = n
		}
	}
	if total != p*20 {
		t.Fatalf("planes not conserved: %d", total)
	}
	if maxP-minP > 5 {
		t.Errorf("fast nodes spread %d..%d; diffusion failed: %v", minP, maxP, planes)
	}
}
