// Package core implements the paper's primary contribution: filtered
// dynamic remapping of lattice points (Section 3). A remapping round
// runs every Interval LBM phases. Each node predicts its next-phase
// time with the harmonic mean of its last K measured phase times,
// exchanges (point count, predicted time) with its neighbors in the
// linear processor array, and solves the local three-node balance
//
//	N'_{i-1}/S_{i-1} = N'_i/S_i = N'_{i+1}/S_{i+1}
//	  with N' summing to N_{i-1}+N_i+N_{i+1},  S_j = N_j / T_j
//
// A transfer toward a neighbor happens only if it passes the filters:
// the amount exceeds a threshold (one 2-D lattice plane) and the
// receiver is faster than the sender (lazy remapping — never feed a
// slow node). When a transfer fires from a confirmed-slow node, the
// amount is scaled up by kappa = S_recv/S_send (over-redistribution),
// aggressively draining the slow node. Conflicting opposite decisions
// at a boundary are resolved by shipping the net amount.
package core

import (
	"fmt"

	"microslip/internal/decomp"
)

// Config holds the tunables of the remapping schemes. The defaults
// (DefaultConfig) follow Section 3.4 and the experimental setup of
// Section 4 for the 400 x 200 x 20 lattice.
type Config struct {
	// HistoryK is the number of recent phase times fed to the
	// harmonic-mean predictor (paper: 10).
	HistoryK int
	// Interval is the number of LBM phases between remapping rounds
	// (REMAPPING_INTERVAL in the paper's pseudo-code).
	Interval int
	// ThresholdPoints is the minimum worthwhile transfer (paper: 4,000
	// lattice points = one 200 x 20 plane).
	ThresholdPoints int
	// PlanePoints is the number of lattice points per 2-D plane, the
	// migration granularity.
	PlanePoints int
	// MinKeepPlanes is the minimum number of planes a node retains so
	// the linear exchange chain stays intact.
	MinKeepPlanes int
	// OverRedistribute enables the kappa = S_recv/S_send scaling
	// (filtered scheme). Disabled for the conservative baseline.
	OverRedistribute bool
	// Alpha divides the transfer amount (conservative redistribution
	// ships delta/alpha, typically alpha = 2; the filtered scheme uses
	// alpha = 1).
	Alpha float64
	// FastToSlowFilter suppresses transfers toward slower receivers.
	FastToSlowFilter bool
	// FilterSlack is the relative speed tolerance of the fast-to-slow
	// filter: a receiver within (1-FilterSlack) of the sender's speed
	// still qualifies, so measurement noise and exact ties do not block
	// diffusion among equally fast nodes.
	FilterSlack float64
	// KappaCap bounds the over-redistribution factor (guards against a
	// nearly stalled sender producing an absurd scale; the budget cap
	// in conflict resolution applies regardless).
	KappaCap float64
}

// DefaultConfig returns the filtered scheme's configuration for a
// lattice whose 2-D planes hold planePoints points each.
func DefaultConfig(planePoints int) Config {
	return Config{
		HistoryK:         10,
		Interval:         25,
		ThresholdPoints:  planePoints,
		PlanePoints:      planePoints,
		MinKeepPlanes:    1,
		OverRedistribute: true,
		Alpha:            1,
		FastToSlowFilter: true,
		FilterSlack:      0.05,
		KappaCap:         8,
	}
}

// ConservativeConfig returns the conservative baseline: identical lazy
// machinery but delta/alpha shipping instead of over-redistribution
// (Section 4.2.2 compares the two).
func ConservativeConfig(planePoints int) Config {
	c := DefaultConfig(planePoints)
	c.OverRedistribute = false
	c.Alpha = 2
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.HistoryK < 1 {
		return fmt.Errorf("core: HistoryK %d < 1", c.HistoryK)
	}
	if c.Interval < 1 {
		return fmt.Errorf("core: Interval %d < 1", c.Interval)
	}
	if c.PlanePoints < 1 {
		return fmt.Errorf("core: PlanePoints %d < 1", c.PlanePoints)
	}
	if c.ThresholdPoints < 0 {
		return fmt.Errorf("core: negative ThresholdPoints")
	}
	if c.MinKeepPlanes < 1 {
		return fmt.Errorf("core: MinKeepPlanes %d < 1", c.MinKeepPlanes)
	}
	if c.Alpha < 1 {
		return fmt.Errorf("core: Alpha %v < 1", c.Alpha)
	}
	if c.KappaCap < 1 {
		return fmt.Errorf("core: KappaCap %v < 1", c.KappaCap)
	}
	if c.FilterSlack < 0 || c.FilterSlack >= 1 {
		return fmt.Errorf("core: FilterSlack %v out of [0,1)", c.FilterSlack)
	}
	return nil
}

// Window is the local information node i holds at a remapping round:
// its own point count and predicted time plus those of its neighbors
// in the linear array (absent at the ends).
type Window struct {
	HasLeft, HasRight               bool
	PointsLeft, Points, PointsRight int
	TimeLeft, Time, TimeRight       float64
}

// speed returns points per unit time, or 0 when unknown.
func speed(points int, t float64) float64 {
	if t <= 0 || points <= 0 {
		return 0
	}
	return float64(points) / t
}

// DecideNode computes the planes node i wants to ship to its left and
// right neighbors. It is a pure function of the local window, so the
// distributed runner (parlbm) and the cluster simulator (vcluster)
// share it exactly.
func (c Config) DecideNode(w Window) (toLeftPlanes, toRightPlanes int) {
	sSelf := speed(w.Points, w.Time)
	if sSelf == 0 {
		return 0, 0
	}
	if w.HasRight {
		toRightPlanes = c.decideDirection(w, sSelf, true)
	}
	if w.HasLeft {
		toLeftPlanes = c.decideDirection(w, sSelf, false)
	}
	// Never plan to ship more than we own minus the kept minimum.
	budget := w.Points/c.PlanePoints - c.MinKeepPlanes
	if budget < 0 {
		budget = 0
	}
	toLeftPlanes, toRightPlanes = trimToBudget(toLeftPlanes, toRightPlanes, budget)
	return toLeftPlanes, toRightPlanes
}

// decideDirection evaluates a transfer from the window's center toward
// the right (toRight true) or left neighbor.
func (c Config) decideDirection(w Window, sSelf float64, toRight bool) int {
	var nRecv int
	var tRecv float64
	if toRight {
		nRecv, tRecv = w.PointsRight, w.TimeRight
	} else {
		nRecv, tRecv = w.PointsLeft, w.TimeLeft
	}
	sRecv := speed(nRecv, tRecv)
	if sRecv == 0 {
		return 0
	}
	// Local balance over the full window the node can see.
	sumN := w.Points + nRecv
	sumS := sSelf + sRecv
	if toRight && w.HasLeft {
		sL := speed(w.PointsLeft, w.TimeLeft)
		if sL > 0 {
			sumN += w.PointsLeft
			sumS += sL
		}
	}
	if !toRight && w.HasRight {
		sR := speed(w.PointsRight, w.TimeRight)
		if sR > 0 {
			sumN += w.PointsRight
			sumS += sR
		}
	}
	target := sRecv * float64(sumN) / sumS
	delta := target - float64(nRecv)
	if delta < float64(c.ThresholdPoints) {
		return 0
	}
	if c.FastToSlowFilter && sRecv < sSelf*(1-c.FilterSlack) {
		return 0
	}
	amount := delta
	if c.OverRedistribute {
		kappa := sRecv / sSelf
		if kappa > c.KappaCap {
			kappa = c.KappaCap
		}
		if kappa > 1 {
			amount *= kappa
		}
	}
	amount /= c.Alpha
	planes := int(amount/float64(c.PlanePoints) + 0.5)
	if planes < 1 && delta >= float64(c.ThresholdPoints) {
		planes = 1
	}
	return planes
}

// trimToBudget reduces the pair (l, r) until l+r <= budget, always
// trimming the strictly larger side; exact ties shrink both sides so
// the result is mirror-symmetric (it may undershoot the budget by one).
func trimToBudget(l, r, budget int) (int, int) {
	for l+r > budget {
		switch {
		case l > r:
			l--
		case r > l:
			r--
		default:
			if l == 0 {
				return 0, 0
			}
			l--
			r--
		}
	}
	return l, r
}

// Desire is one node's planned outgoing transfers, in planes.
type Desire struct {
	ToLeft, ToRight int
}

// DecideAll evaluates DecideNode for every node from global snapshots
// of per-node plane counts and predicted times; used by the cluster
// simulator (the distributed runner evaluates each node locally with
// messages instead, producing identical desires).
func (c Config) DecideAll(planes []int, predicted []float64) []Desire {
	p := len(planes)
	out := make([]Desire, p)
	for i := 0; i < p; i++ {
		w := Window{
			HasLeft:  i > 0,
			HasRight: i < p-1,
			Points:   planes[i] * c.PlanePoints,
			Time:     predicted[i],
		}
		if w.HasLeft {
			w.PointsLeft = planes[i-1] * c.PlanePoints
			w.TimeLeft = predicted[i-1]
		}
		if w.HasRight {
			w.PointsRight = planes[i+1] * c.PlanePoints
			w.TimeRight = predicted[i+1]
		}
		l, r := c.DecideNode(w)
		out[i] = Desire{ToLeft: l, ToRight: r}
	}
	return out
}

// Resolve turns per-node desires into executable neighbor transfers:
// opposite desires across a boundary cancel to their net (the paper's
// conflict resolution), and each node's total outgoing is capped so it
// keeps MinKeepPlanes planes.
func (c Config) Resolve(desires []Desire, ownedPlanes []int) []decomp.Transfer {
	p := len(desires)
	if len(ownedPlanes) != p {
		panic(fmt.Sprintf("core: %d desires for %d nodes", p, len(ownedPlanes)))
	}
	// Net flow across each boundary b (between node b and b+1);
	// positive = rightward.
	net := make([]int, p-1)
	for b := 0; b < p-1; b++ {
		net[b] = desires[b].ToRight - desires[b+1].ToLeft
	}
	// Cap outgoing totals per node.
	for i := 0; i < p; i++ {
		budget := ownedPlanes[i] - c.MinKeepPlanes
		if budget < 0 {
			budget = 0
		}
		outL, outR := 0, 0
		if i > 0 && net[i-1] < 0 {
			outL = -net[i-1]
		}
		if i < p-1 && net[i] > 0 {
			outR = net[i]
		}
		newL, newR := trimToBudget(outL, outR, budget)
		if i > 0 {
			net[i-1] += outL - newL
		}
		if i < p-1 {
			net[i] -= outR - newR
		}
	}
	var ts []decomp.Transfer
	for b := 0; b < p-1; b++ {
		switch {
		case net[b] > 0:
			ts = append(ts, decomp.Transfer{From: b, To: b + 1, Planes: net[b]})
		case net[b] < 0:
			ts = append(ts, decomp.Transfer{From: b + 1, To: b, Planes: -net[b]})
		}
	}
	return ts
}
