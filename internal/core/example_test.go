package core_test

import (
	"fmt"

	"microslip/internal/core"
)

// A 3x-slow middle node sheds nearly all of its planes in one filtered
// remapping round (over-redistribution), while its fast neighbors are
// forbidden from feeding it.
func ExampleConfig_DecideAll() {
	cfg := core.DefaultConfig(4000) // 200 x 20 lattice planes

	planes := []int{20, 20, 20}
	// Predicted next-phase times: node 1 is three times slower.
	predicted := []float64{0.4, 1.2, 0.4}

	desires := cfg.DecideAll(planes, predicted)
	transfers := cfg.Resolve(desires, planes)
	for _, tr := range transfers {
		fmt.Printf("move %d planes from node %d to node %d\n", tr.Planes, tr.From, tr.To)
	}
	// Output:
	// move 9 planes from node 1 to node 0
	// move 9 planes from node 1 to node 2
}
