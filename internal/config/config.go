// Package config defines the JSON experiment configuration consumed by
// cmd/clustersim, mapping declarative workload and scheme descriptions
// onto the vcluster and balance packages.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"microslip/internal/balance"
	"microslip/internal/comm"
	"microslip/internal/vcluster"
)

// Workload describes the background-job pattern of a run.
type Workload struct {
	// Type is one of "dedicated", "fixed-slow", "duty-cycle", "spikes".
	Type string `json:"type"`
	// SlowNodes lists the disturbed nodes for fixed-slow; empty means
	// SlowCount nodes spread evenly.
	SlowNodes []int `json:"slow_nodes,omitempty"`
	// SlowCount spreads this many slow nodes when SlowNodes is empty.
	SlowCount int `json:"slow_count,omitempty"`
	// Node and Duty configure the duty-cycle workload (Figure 3).
	Node int     `json:"node,omitempty"`
	Duty float64 `json:"duty,omitempty"`
	// SpikeSeconds configures the transient-spike workload (Table 1).
	SpikeSeconds float64 `json:"spike_seconds,omitempty"`
	// HorizonSeconds bounds the spike schedule; 0 picks a generous
	// default.
	HorizonSeconds float64 `json:"horizon_seconds,omitempty"`
}

// Resilience exposes the comm retry/deadline knobs declaratively.
// Durations are integral microseconds/milliseconds so configurations
// stay plain JSON numbers; zero knobs inherit comm.DefaultResilience.
type Resilience struct {
	// Enabled turns the resilience layer on for distributed runs.
	Enabled bool `json:"enabled"`
	// MaxRetries caps retry attempts per operation.
	MaxRetries int `json:"max_retries,omitempty"`
	// BaseBackoffUS is the first retry backoff, in microseconds; it
	// doubles per attempt up to MaxBackoffUS.
	BaseBackoffUS int `json:"base_backoff_us,omitempty"`
	// MaxBackoffUS caps the backoff, in microseconds.
	MaxBackoffUS int `json:"max_backoff_us,omitempty"`
	// OpTimeoutMS is the per-receive deadline, in milliseconds.
	OpTimeoutMS int `json:"op_timeout_ms,omitempty"`
}

// Build maps the declarative knobs onto a validated comm.Resilience.
func (r Resilience) Build() (comm.Resilience, error) {
	res := comm.DefaultResilience()
	if r.MaxRetries != 0 {
		res.MaxRetries = r.MaxRetries
	}
	if r.BaseBackoffUS != 0 {
		res.BaseBackoff = time.Duration(r.BaseBackoffUS) * time.Microsecond
	}
	if r.MaxBackoffUS != 0 {
		res.MaxBackoff = time.Duration(r.MaxBackoffUS) * time.Microsecond
	}
	if r.OpTimeoutMS != 0 {
		res.OpTimeout = time.Duration(r.OpTimeoutMS) * time.Millisecond
	}
	if err := res.Validate(); err != nil {
		return comm.Resilience{}, fmt.Errorf("config: %w", err)
	}
	return res, nil
}

// Recovery exposes the failure-model knobs declaratively: the
// heartbeat failure detector, coordinated checkpointing, and the
// rank-death budget. Durations are integral milliseconds so
// configurations stay plain JSON numbers; zero knobs inherit
// comm.DefaultHeartbeat.
type Recovery struct {
	// HeartbeatIntervalMS is the idle prober's beat period, in
	// milliseconds.
	HeartbeatIntervalMS int `json:"heartbeat_interval_ms,omitempty"`
	// HeartbeatDeadAfterMS is the silence threshold after which a peer
	// is declared permanently dead, in milliseconds. Must stay at least
	// twice the interval.
	HeartbeatDeadAfterMS int `json:"heartbeat_dead_after_ms,omitempty"`
	// CheckpointInterval takes a coordinated checkpoint every this many
	// phases; zero disables checkpointing, so a node death restarts the
	// run from phase zero.
	CheckpointInterval int `json:"checkpoint_interval,omitempty"`
	// MaxRankFailures bounds how many node deaths a run may survive;
	// zero means unlimited (any death count leaving at least one
	// survivor).
	MaxRankFailures int `json:"max_rank_failures,omitempty"`
}

// BuildHeartbeat maps the declarative knobs onto validated
// comm.HeartbeatOptions.
func (r Recovery) BuildHeartbeat() (comm.HeartbeatOptions, error) {
	hb := comm.DefaultHeartbeat()
	if r.HeartbeatIntervalMS != 0 {
		hb.Interval = time.Duration(r.HeartbeatIntervalMS) * time.Millisecond
	}
	if r.HeartbeatDeadAfterMS != 0 {
		hb.DeadAfter = time.Duration(r.HeartbeatDeadAfterMS) * time.Millisecond
	}
	if err := hb.Validate(); err != nil {
		return comm.HeartbeatOptions{}, fmt.Errorf("config: %w", err)
	}
	return hb, nil
}

// NodeDeath schedules a permanent node death in a simulated run.
type NodeDeath struct {
	// Node is the dying node's index.
	Node int `json:"node"`
	// Phase is the 0-based phase at whose start the node dies.
	Phase int `json:"phase"`
}

// Experiment is one clustersim run.
type Experiment struct {
	Nodes       int        `json:"nodes"`
	Phases      int        `json:"phases"`
	Policy      string     `json:"policy"`
	Workload    Workload   `json:"workload"`
	TotalPlanes int        `json:"total_planes,omitempty"` // default 400
	PlanePoints int        `json:"plane_points,omitempty"` // default 4000
	Seed        int64      `json:"seed,omitempty"`
	Resilience  Resilience `json:"resilience,omitempty"`
	// ExchangeFailureRate injects simulated halo-exchange wire loss
	// into vcluster runs; each lost exchange is retried and charged to
	// the phase. Must be in [0, 1).
	ExchangeFailureRate float64 `json:"exchange_failure_rate,omitempty"`
	// Recovery configures the failure detector, checkpointing, and the
	// death budget.
	Recovery Recovery `json:"recovery,omitempty"`
	// NodeDeaths schedules permanent node deaths the run must survive
	// by shrinking onto the survivors.
	NodeDeaths []NodeDeath `json:"node_deaths,omitempty"`
}

// Default fills unset fields with the paper's values.
func (e *Experiment) Default() {
	if e.Nodes == 0 {
		e.Nodes = 20
	}
	if e.Phases == 0 {
		e.Phases = 600
	}
	if e.Policy == "" {
		e.Policy = "filtered"
	}
	if e.TotalPlanes == 0 {
		e.TotalPlanes = 400
	}
	if e.PlanePoints == 0 {
		e.PlanePoints = 4000
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	if e.Workload.Type == "" {
		e.Workload.Type = "dedicated"
	}
}

// MaxNodes bounds the simulated cluster size a configuration may
// request; it keeps hostile or corrupted inputs from demanding
// absurd allocations.
const MaxNodes = 4096

// MaxHorizonSeconds bounds the spike-schedule horizon for the same
// reason (the schedule holds one entry per DisturbancePeriod).
const MaxHorizonSeconds = 1e6

// Validate checks the configuration after defaulting. An experiment
// that validates is guaranteed to build: BuildPolicy, BuildTraces,
// BuildConfig and BuildResilience cannot fail or panic afterwards
// (FuzzRead enforces exactly this).
func (e *Experiment) Validate() error {
	if e.Nodes < 1 || e.Phases < 1 {
		return fmt.Errorf("config: nodes %d / phases %d must be positive", e.Nodes, e.Phases)
	}
	if e.Nodes > MaxNodes {
		return fmt.Errorf("config: nodes %d exceeds limit %d", e.Nodes, MaxNodes)
	}
	if e.TotalPlanes < e.Nodes {
		return fmt.Errorf("config: %d planes cannot cover %d nodes", e.TotalPlanes, e.Nodes)
	}
	if e.PlanePoints < 1 {
		return fmt.Errorf("config: plane_points %d must be positive", e.PlanePoints)
	}
	if _, err := balance.ByName(e.Policy, e.PlanePoints); err != nil {
		return err
	}
	if math.IsNaN(e.ExchangeFailureRate) || e.ExchangeFailureRate < 0 || e.ExchangeFailureRate >= 1 {
		return fmt.Errorf("config: exchange_failure_rate %v outside [0, 1)", e.ExchangeFailureRate)
	}
	w := e.Workload
	switch w.Type {
	case "dedicated":
	case "fixed-slow":
		for _, n := range w.SlowNodes {
			if n < 0 || n >= e.Nodes {
				return fmt.Errorf("config: slow node %d out of range [0,%d)", n, e.Nodes)
			}
		}
		if len(w.SlowNodes) == 0 && (w.SlowCount < 0 || w.SlowCount > e.Nodes) {
			return fmt.Errorf("config: slow_count %d out of [0,%d]", w.SlowCount, e.Nodes)
		}
	case "duty-cycle":
		if w.Node < 0 || w.Node >= e.Nodes {
			return fmt.Errorf("config: node %d out of range [0,%d)", w.Node, e.Nodes)
		}
		if math.IsNaN(w.Duty) || w.Duty < 0 || w.Duty > 1 {
			return fmt.Errorf("config: duty %v out of [0,1]", w.Duty)
		}
	case "spikes":
		if math.IsNaN(w.SpikeSeconds) || w.SpikeSeconds <= 0 || w.SpikeSeconds > vcluster.DisturbancePeriod {
			return fmt.Errorf("config: spike length %v out of (0,%v]", w.SpikeSeconds, vcluster.DisturbancePeriod)
		}
		if math.IsNaN(w.HorizonSeconds) || w.HorizonSeconds < 0 || w.HorizonSeconds > MaxHorizonSeconds {
			return fmt.Errorf("config: horizon %v out of [0,%v]", w.HorizonSeconds, MaxHorizonSeconds)
		}
	default:
		return fmt.Errorf("config: unknown workload type %q", w.Type)
	}
	if _, err := e.Resilience.Build(); err != nil {
		return err
	}
	if _, err := e.Recovery.BuildHeartbeat(); err != nil {
		return err
	}
	if e.Recovery.CheckpointInterval < 0 {
		return fmt.Errorf("config: checkpoint_interval %d negative", e.Recovery.CheckpointInterval)
	}
	if e.Recovery.MaxRankFailures < 0 {
		return fmt.Errorf("config: max_rank_failures %d negative", e.Recovery.MaxRankFailures)
	}
	if len(e.NodeDeaths) >= e.Nodes {
		return fmt.Errorf("config: %d node deaths leave no survivors among %d nodes", len(e.NodeDeaths), e.Nodes)
	}
	if e.Recovery.MaxRankFailures > 0 && len(e.NodeDeaths) > e.Recovery.MaxRankFailures {
		return fmt.Errorf("config: %d node deaths exceed max_rank_failures %d", len(e.NodeDeaths), e.Recovery.MaxRankFailures)
	}
	dying := make(map[int]bool, len(e.NodeDeaths))
	for _, d := range e.NodeDeaths {
		if d.Node < 0 || d.Node >= e.Nodes {
			return fmt.Errorf("config: death of node %d out of range [0,%d)", d.Node, e.Nodes)
		}
		if d.Phase < 0 || d.Phase >= e.Phases {
			return fmt.Errorf("config: death at phase %d out of range [0,%d)", d.Phase, e.Phases)
		}
		if dying[d.Node] {
			return fmt.Errorf("config: node %d dies twice", d.Node)
		}
		dying[d.Node] = true
	}
	return nil
}

// BuildHeartbeat returns the run's failure-detector settings.
func (e *Experiment) BuildHeartbeat() (comm.HeartbeatOptions, error) {
	return e.Recovery.BuildHeartbeat()
}

// BuildResilience returns the run's comm resilience settings and
// whether the layer is enabled at all.
func (e *Experiment) BuildResilience() (comm.Resilience, bool, error) {
	res, err := e.Resilience.Build()
	if err != nil {
		return comm.Resilience{}, false, err
	}
	return res, e.Resilience.Enabled, nil
}

// BuildPolicy constructs the remapping policy.
func (e *Experiment) BuildPolicy() (balance.Policy, error) {
	return balance.ByName(e.Policy, e.PlanePoints)
}

// BuildTraces constructs the per-node speed traces.
func (e *Experiment) BuildTraces() ([]vcluster.SpeedTrace, error) {
	w := e.Workload
	switch w.Type {
	case "dedicated":
		return vcluster.Dedicated(e.Nodes), nil
	case "fixed-slow":
		slow := w.SlowNodes
		if len(slow) == 0 {
			slow = vcluster.SpreadSlowNodes(e.Nodes, w.SlowCount)
		}
		for _, n := range slow {
			if n < 0 || n >= e.Nodes {
				return nil, fmt.Errorf("config: slow node %d out of range", n)
			}
		}
		return vcluster.FixedSlowNodes(e.Nodes, slow), nil
	case "duty-cycle":
		if w.Node < 0 || w.Node >= e.Nodes {
			return nil, fmt.Errorf("config: node %d out of range", w.Node)
		}
		return vcluster.DutyCycleNode(e.Nodes, w.Node, w.Duty), nil
	case "spikes":
		horizon := w.HorizonSeconds
		if horizon == 0 {
			horizon = 1e5
		}
		return vcluster.TransientSpikes(e.Nodes, w.SpikeSeconds, horizon, e.Seed+42), nil
	}
	return nil, fmt.Errorf("config: unknown workload type %q", w.Type)
}

// BuildConfig assembles the full vcluster configuration.
func (e *Experiment) BuildConfig() (vcluster.Config, error) {
	pol, err := e.BuildPolicy()
	if err != nil {
		return vcluster.Config{}, err
	}
	traces, err := e.BuildTraces()
	if err != nil {
		return vcluster.Config{}, err
	}
	cfg := vcluster.DefaultConfig(pol, traces, e.Phases)
	cfg.TotalPlanes = e.TotalPlanes
	cfg.PlanePoints = e.PlanePoints
	cfg.Seed = e.Seed
	cfg.ExchangeFailureRate = e.ExchangeFailureRate
	cfg.CheckpointInterval = e.Recovery.CheckpointInterval
	for _, d := range e.NodeDeaths {
		cfg.NodeDeaths = append(cfg.NodeDeaths, vcluster.NodeDeath{Node: d.Node, Phase: d.Phase})
	}
	return cfg, nil
}

// Read parses, defaults and validates an experiment from JSON.
func Read(r io.Reader) (*Experiment, error) {
	var e Experiment
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	e.Default()
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// ReadFile reads an experiment from a JSON file.
func ReadFile(path string) (*Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Read(f)
}
