// Package config defines the JSON experiment configuration consumed by
// cmd/clustersim, mapping declarative workload and scheme descriptions
// onto the vcluster and balance packages.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"microslip/internal/balance"
	"microslip/internal/vcluster"
)

// Workload describes the background-job pattern of a run.
type Workload struct {
	// Type is one of "dedicated", "fixed-slow", "duty-cycle", "spikes".
	Type string `json:"type"`
	// SlowNodes lists the disturbed nodes for fixed-slow; empty means
	// SlowCount nodes spread evenly.
	SlowNodes []int `json:"slow_nodes,omitempty"`
	// SlowCount spreads this many slow nodes when SlowNodes is empty.
	SlowCount int `json:"slow_count,omitempty"`
	// Node and Duty configure the duty-cycle workload (Figure 3).
	Node int     `json:"node,omitempty"`
	Duty float64 `json:"duty,omitempty"`
	// SpikeSeconds configures the transient-spike workload (Table 1).
	SpikeSeconds float64 `json:"spike_seconds,omitempty"`
	// HorizonSeconds bounds the spike schedule; 0 picks a generous
	// default.
	HorizonSeconds float64 `json:"horizon_seconds,omitempty"`
}

// Experiment is one clustersim run.
type Experiment struct {
	Nodes       int      `json:"nodes"`
	Phases      int      `json:"phases"`
	Policy      string   `json:"policy"`
	Workload    Workload `json:"workload"`
	TotalPlanes int      `json:"total_planes,omitempty"` // default 400
	PlanePoints int      `json:"plane_points,omitempty"` // default 4000
	Seed        int64    `json:"seed,omitempty"`
}

// Default fills unset fields with the paper's values.
func (e *Experiment) Default() {
	if e.Nodes == 0 {
		e.Nodes = 20
	}
	if e.Phases == 0 {
		e.Phases = 600
	}
	if e.Policy == "" {
		e.Policy = "filtered"
	}
	if e.TotalPlanes == 0 {
		e.TotalPlanes = 400
	}
	if e.PlanePoints == 0 {
		e.PlanePoints = 4000
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	if e.Workload.Type == "" {
		e.Workload.Type = "dedicated"
	}
}

// Validate checks the configuration after defaulting.
func (e *Experiment) Validate() error {
	if e.Nodes < 1 || e.Phases < 1 {
		return fmt.Errorf("config: nodes %d / phases %d must be positive", e.Nodes, e.Phases)
	}
	if _, err := balance.ByName(e.Policy, e.PlanePoints); err != nil {
		return err
	}
	switch e.Workload.Type {
	case "dedicated", "fixed-slow", "duty-cycle", "spikes":
	default:
		return fmt.Errorf("config: unknown workload type %q", e.Workload.Type)
	}
	if e.Workload.Type == "duty-cycle" && (e.Workload.Duty < 0 || e.Workload.Duty > 1) {
		return fmt.Errorf("config: duty %v out of [0,1]", e.Workload.Duty)
	}
	if e.Workload.Type == "spikes" && (e.Workload.SpikeSeconds <= 0 || e.Workload.SpikeSeconds > vcluster.DisturbancePeriod) {
		return fmt.Errorf("config: spike length %v out of (0,%v]", e.Workload.SpikeSeconds, vcluster.DisturbancePeriod)
	}
	return nil
}

// BuildPolicy constructs the remapping policy.
func (e *Experiment) BuildPolicy() (balance.Policy, error) {
	return balance.ByName(e.Policy, e.PlanePoints)
}

// BuildTraces constructs the per-node speed traces.
func (e *Experiment) BuildTraces() ([]vcluster.SpeedTrace, error) {
	w := e.Workload
	switch w.Type {
	case "dedicated":
		return vcluster.Dedicated(e.Nodes), nil
	case "fixed-slow":
		slow := w.SlowNodes
		if len(slow) == 0 {
			slow = vcluster.SpreadSlowNodes(e.Nodes, w.SlowCount)
		}
		for _, n := range slow {
			if n < 0 || n >= e.Nodes {
				return nil, fmt.Errorf("config: slow node %d out of range", n)
			}
		}
		return vcluster.FixedSlowNodes(e.Nodes, slow), nil
	case "duty-cycle":
		if w.Node < 0 || w.Node >= e.Nodes {
			return nil, fmt.Errorf("config: node %d out of range", w.Node)
		}
		return vcluster.DutyCycleNode(e.Nodes, w.Node, w.Duty), nil
	case "spikes":
		horizon := w.HorizonSeconds
		if horizon == 0 {
			horizon = 1e5
		}
		return vcluster.TransientSpikes(e.Nodes, w.SpikeSeconds, horizon, e.Seed+42), nil
	}
	return nil, fmt.Errorf("config: unknown workload type %q", w.Type)
}

// BuildConfig assembles the full vcluster configuration.
func (e *Experiment) BuildConfig() (vcluster.Config, error) {
	pol, err := e.BuildPolicy()
	if err != nil {
		return vcluster.Config{}, err
	}
	traces, err := e.BuildTraces()
	if err != nil {
		return vcluster.Config{}, err
	}
	cfg := vcluster.DefaultConfig(pol, traces, e.Phases)
	cfg.TotalPlanes = e.TotalPlanes
	cfg.PlanePoints = e.PlanePoints
	cfg.Seed = e.Seed
	return cfg, nil
}

// Read parses, defaults and validates an experiment from JSON.
func Read(r io.Reader) (*Experiment, error) {
	var e Experiment
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	e.Default()
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// ReadFile reads an experiment from a JSON file.
func ReadFile(path string) (*Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Read(f)
}
