package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaults(t *testing.T) {
	e, err := Read(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Nodes != 20 || e.Phases != 600 || e.Policy != "filtered" ||
		e.TotalPlanes != 400 || e.PlanePoints != 4000 || e.Workload.Type != "dedicated" {
		t.Errorf("defaults wrong: %+v", e)
	}
	cfg, err := e.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("built config invalid: %v", err)
	}
}

func TestWorkloads(t *testing.T) {
	cases := []string{
		`{"workload":{"type":"fixed-slow","slow_nodes":[3,9]}}`,
		`{"workload":{"type":"fixed-slow","slow_count":2}}`,
		`{"workload":{"type":"duty-cycle","node":5,"duty":0.7}}`,
		`{"workload":{"type":"spikes","spike_seconds":2}}`,
	}
	for _, c := range cases {
		e, err := Read(strings.NewReader(c))
		if err != nil {
			t.Errorf("%s: %v", c, err)
			continue
		}
		traces, err := e.BuildTraces()
		if err != nil {
			t.Errorf("%s: %v", c, err)
			continue
		}
		if len(traces) != e.Nodes {
			t.Errorf("%s: %d traces for %d nodes", c, len(traces), e.Nodes)
		}
	}
}

func TestRejections(t *testing.T) {
	cases := []string{
		`{"policy":"bogus"}`,
		`{"workload":{"type":"weird"}}`,
		`{"workload":{"type":"duty-cycle","duty":1.5}}`,
		`{"workload":{"type":"spikes","spike_seconds":0}}`,
		`{"workload":{"type":"spikes","spike_seconds":99}}`,
		`{"unknown_field": 3}`,
		`{nonsense`,
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("%s: accepted", c)
		}
	}
	e, _ := Read(strings.NewReader(`{"workload":{"type":"fixed-slow","slow_nodes":[99]}}`))
	if _, err := e.BuildTraces(); err == nil {
		t.Error("out-of-range slow node accepted")
	}
}

func TestReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(path, []byte(`{"phases": 42, "policy": "global"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Phases != 42 || e.Policy != "global" {
		t.Errorf("loaded %+v", e)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
