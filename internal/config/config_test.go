package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"microslip/internal/comm"
)

func TestResilienceKnobs(t *testing.T) {
	e, err := Read(strings.NewReader(`{"resilience": {
		"enabled": true, "max_retries": 3,
		"base_backoff_us": 250, "max_backoff_us": 5000, "op_timeout_ms": 40}}`))
	if err != nil {
		t.Fatal(err)
	}
	res, enabled, err := e.BuildResilience()
	if err != nil {
		t.Fatal(err)
	}
	if !enabled {
		t.Error("resilience should be enabled")
	}
	if res.MaxRetries != 3 || res.BaseBackoff != 250*time.Microsecond ||
		res.MaxBackoff != 5*time.Millisecond || res.OpTimeout != 40*time.Millisecond {
		t.Errorf("built %+v", res)
	}

	// Unset knobs inherit the comm defaults; disabled by default.
	e, err = Read(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	res, enabled, err = e.BuildResilience()
	if err != nil {
		t.Fatal(err)
	}
	if enabled {
		t.Error("resilience should default to disabled")
	}
	def := comm.DefaultResilience()
	if res.MaxRetries != def.MaxRetries || res.BaseBackoff != def.BaseBackoff ||
		res.MaxBackoff != def.MaxBackoff || res.OpTimeout != def.OpTimeout {
		t.Errorf("default knobs %+v, want %+v", res, def)
	}
}

func TestDefaults(t *testing.T) {
	e, err := Read(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Nodes != 20 || e.Phases != 600 || e.Policy != "filtered" ||
		e.TotalPlanes != 400 || e.PlanePoints != 4000 || e.Workload.Type != "dedicated" {
		t.Errorf("defaults wrong: %+v", e)
	}
	cfg, err := e.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("built config invalid: %v", err)
	}
}

func TestWorkloads(t *testing.T) {
	cases := []string{
		`{"workload":{"type":"fixed-slow","slow_nodes":[3,9]}}`,
		`{"workload":{"type":"fixed-slow","slow_count":2}}`,
		`{"workload":{"type":"duty-cycle","node":5,"duty":0.7}}`,
		`{"workload":{"type":"spikes","spike_seconds":2}}`,
	}
	for _, c := range cases {
		e, err := Read(strings.NewReader(c))
		if err != nil {
			t.Errorf("%s: %v", c, err)
			continue
		}
		traces, err := e.BuildTraces()
		if err != nil {
			t.Errorf("%s: %v", c, err)
			continue
		}
		if len(traces) != e.Nodes {
			t.Errorf("%s: %d traces for %d nodes", c, len(traces), e.Nodes)
		}
	}
}

func TestRejections(t *testing.T) {
	cases := []string{
		`{"policy":"bogus"}`,
		`{"workload":{"type":"weird"}}`,
		`{"workload":{"type":"duty-cycle","duty":1.5}}`,
		`{"workload":{"type":"spikes","spike_seconds":0}}`,
		`{"workload":{"type":"spikes","spike_seconds":99}}`,
		`{"unknown_field": 3}`,
		`{nonsense`,
		`{"nodes":3,"workload":{"type":"fixed-slow","slow_nodes":[99]}}`,
		`{"workload":{"type":"fixed-slow","slow_count":-2}}`,
		`{"nodes":4,"workload":{"type":"duty-cycle","node":7}}`,
		`{"nodes":99999}`,
		`{"total_planes":5,"nodes":20}`,
		`{"plane_points":-1}`,
		`{"resilience":{"max_retries":-1}}`,
		`{"resilience":{"base_backoff_us":500,"max_backoff_us":10}}`,
		`{"exchange_failure_rate":1.5}`,
		`{"exchange_failure_rate":-0.2}`,
		`{"exchange_failure_rate":1}`,
		`{"recovery":{"heartbeat_interval_ms":-5}}`,
		`{"recovery":{"heartbeat_interval_ms":100,"heartbeat_dead_after_ms":150}}`,
		`{"recovery":{"checkpoint_interval":-1}}`,
		`{"recovery":{"max_rank_failures":-1}}`,
		`{"nodes":3,"node_deaths":[{"node":3,"phase":1}]}`,
		`{"nodes":3,"phases":10,"node_deaths":[{"node":1,"phase":10}]}`,
		`{"nodes":3,"node_deaths":[{"node":1,"phase":1},{"node":1,"phase":2}]}`,
		`{"nodes":2,"node_deaths":[{"node":0,"phase":1},{"node":1,"phase":2}]}`,
		`{"recovery":{"max_rank_failures":1},"node_deaths":[{"node":1,"phase":1},{"node":2,"phase":2}]}`,
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("%s: accepted", c)
		}
	}
}

func TestRecoveryKnobs(t *testing.T) {
	e, err := Read(strings.NewReader(`{
		"recovery": {"heartbeat_interval_ms": 20, "heartbeat_dead_after_ms": 500,
			"checkpoint_interval": 50, "max_rank_failures": 2},
		"node_deaths": [{"node": 9, "phase": 120}, {"node": 3, "phase": 400}]}`))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := e.BuildHeartbeat()
	if err != nil {
		t.Fatal(err)
	}
	if hb.Interval != 20*time.Millisecond || hb.DeadAfter != 500*time.Millisecond {
		t.Errorf("built heartbeat %+v", hb)
	}
	cfg, err := e.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CheckpointInterval != 50 {
		t.Errorf("CheckpointInterval = %d, want 50", cfg.CheckpointInterval)
	}
	if len(cfg.NodeDeaths) != 2 || cfg.NodeDeaths[0].Node != 9 || cfg.NodeDeaths[1].Phase != 400 {
		t.Errorf("NodeDeaths = %+v", cfg.NodeDeaths)
	}

	// Unset knobs inherit the comm heartbeat defaults.
	e, err = Read(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	hb, err = e.BuildHeartbeat()
	if err != nil {
		t.Fatal(err)
	}
	if def := comm.DefaultHeartbeat(); hb != def {
		t.Errorf("default heartbeat %+v, want %+v", hb, def)
	}
}

func TestReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(path, []byte(`{"phases": 42, "policy": "global"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Phases != 42 || e.Policy != "global" {
		t.Errorf("loaded %+v", e)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
