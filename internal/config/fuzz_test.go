package config

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzRead drives the JSON experiment parser with arbitrary bytes and
// enforces the package's central contract: Read either rejects the
// input with an error or returns an Experiment that is fully buildable
// — every Build* method succeeds, and the config round-trips through
// JSON back to an accepted experiment. Seed corpus lives under
// testdata/fuzz/FuzzRead.
func FuzzRead(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"nodes": 20, "phases": 600, "policy": "filtered"}`,
		`{"policy": "global", "workload": {"type": "fixed-slow", "slow_count": 4}}`,
		`{"policy": "conservative", "workload": {"type": "duty-cycle", "node": 3, "duty": 0.5}}`,
		`{"workload": {"type": "spikes", "spike_seconds": 2.5, "horizon_seconds": 1000}}`,
		`{"nodes": 8, "workload": {"type": "fixed-slow", "slow_nodes": [1, 5]}}`,
		`{"resilience": {"enabled": true, "max_retries": 5, "base_backoff_us": 200, "op_timeout_ms": 100}}`,
		`{"recovery": {"heartbeat_interval_ms": 20, "heartbeat_dead_after_ms": 400, "checkpoint_interval": 50}}`,
		`{"nodes": 6, "recovery": {"checkpoint_interval": 10, "max_rank_failures": 2}, "node_deaths": [{"node": 2, "phase": 30}]}`,
		`{"node_deaths": [{"node": -1, "phase": 3}]}`,
		`{"recovery": {"heartbeat_interval_ms": 100, "heartbeat_dead_after_ms": 100}}`,
		`{"nodes": -3}`,
		`{"policy": "nonsense"}`,
		`{"workload": {"type": "duty-cycle", "node": -1}}`,
		`{"workload": {"type": "fixed-slow", "slow_count": -2}}`,
		`{"resilience": {"max_retries": -1}}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing else to hold
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("accepted experiment fails Validate: %v", err)
		}
		if _, err := e.BuildPolicy(); err != nil {
			t.Fatalf("accepted experiment fails BuildPolicy: %v", err)
		}
		if _, err := e.BuildTraces(); err != nil {
			t.Fatalf("accepted experiment fails BuildTraces: %v", err)
		}
		if _, err := e.BuildConfig(); err != nil {
			t.Fatalf("accepted experiment fails BuildConfig: %v", err)
		}
		if _, _, err := e.BuildResilience(); err != nil {
			t.Fatalf("accepted experiment fails BuildResilience: %v", err)
		}
		if _, err := e.BuildHeartbeat(); err != nil {
			t.Fatalf("accepted experiment fails BuildHeartbeat: %v", err)
		}
		out, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("accepted experiment fails to marshal: %v", err)
		}
		again, err := Read(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round-tripped experiment rejected: %v\njson: %s", err, out)
		}
		if !reflect.DeepEqual(again, e) {
			t.Fatalf("round trip changed the experiment:\n got %+v\nwant %+v", again, e)
		}
	})
}
