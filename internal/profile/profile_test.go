package profile

import (
	"strings"
	"testing"
)

func TestAccumulation(t *testing.T) {
	p := New(3)
	p.AddComputation(0, 1.5)
	p.AddCommunication(0, 0.5)
	p.AddRemapping(1, 0.25)
	p.AddComputation(1, 2.0)
	if got := p.Nodes[0].Total(); got != 2.0 {
		t.Errorf("node 0 total = %v, want 2", got)
	}
	if got := p.MaxTotal(); got != 2.25 {
		t.Errorf("MaxTotal = %v, want 2.25", got)
	}
	s := p.Sum()
	if s.Computation != 3.5 || s.Communication != 0.5 || s.Remapping != 0.25 {
		t.Errorf("Sum = %+v", s)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{Computation: 1, Communication: 2, Remapping: 3}
	a.Add(Breakdown{Computation: 0.5, Communication: 0.5, Remapping: 0.5})
	if a.Computation != 1.5 || a.Communication != 2.5 || a.Remapping != 3.5 {
		t.Errorf("Add = %+v", a)
	}
}

func TestStringHasAllNodes(t *testing.T) {
	p := New(4)
	out := p.String()
	if got := strings.Count(out, "\n"); got != 5 { // header + 4 rows
		t.Errorf("String has %d lines, want 5:\n%s", got, out)
	}
}
