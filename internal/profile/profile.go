// Package profile records the per-node execution-time breakdown the
// paper reports in Figure 9: time spent computing, communicating
// (including synchronization waits), and remapping (decision exchange
// plus lattice-plane migration).
package profile

import (
	"fmt"
	"strings"
)

// Breakdown is one node's accumulated time split, in seconds.
type Breakdown struct {
	Computation   float64
	Communication float64
	Remapping     float64
	// Checkpoint is time spent persisting coordinated checkpoints
	// (serialization, fsync-equivalent I/O, and the commit barrier).
	Checkpoint float64
	// Overlap is the portion of Computation spent on interior planes
	// while a halo exchange was already posted and in flight (the
	// comm/compute overlap window of the overlapped parallel solver).
	// It is a subset of Computation, not an additional category, so
	// Total does not include it; Communication then counts only the
	// blocking remainder of each exchange.
	Overlap float64
	// Bytes is the wire payload volume behind the Communication and
	// Remapping splits, counted per message class at the solver's
	// send/receive call sites (8 bytes per float64, headers excluded),
	// so it is identical across transports.
	Bytes CommBytes
}

// TagBytes counts the wire traffic of one message class: payload bytes
// and message count, split by direction.
type TagBytes struct {
	SentBytes, RecvBytes int64
	SentMsgs, RecvMsgs   int64
}

// CountSend records one sent message of n payload bytes.
func (t *TagBytes) CountSend(n int) { t.SentBytes += int64(n); t.SentMsgs++ }

// CountRecv records one received message of n payload bytes.
func (t *TagBytes) CountRecv(n int) { t.RecvBytes += int64(n); t.RecvMsgs++ }

// Add accumulates another class's counters.
func (t *TagBytes) Add(o TagBytes) {
	t.SentBytes += o.SentBytes
	t.RecvBytes += o.RecvBytes
	t.SentMsgs += o.SentMsgs
	t.RecvMsgs += o.RecvMsgs
}

// CommBytes is one node's wire traffic split by message class.
type CommBytes struct {
	// DensityHalo and DistHalo are the per-phase halo exchanges of
	// number densities and distribution functions (slim or wide).
	DensityHalo, DistHalo TagBytes
	// Frame counts the coalesced per-neighbour phase frames that
	// replace the two halo messages when coalescing is enabled.
	Frame TagBytes
	// Migration counts lattice-plane transfers of dynamic remapping.
	Migration TagBytes
	// Control counts the small coordination payloads: load-index and
	// desire exchanges of the remapping protocol.
	Control TagBytes
	// Gather counts the end-of-run field gather to rank 0.
	Gather TagBytes
}

// Add accumulates another node's traffic.
func (b *CommBytes) Add(o CommBytes) {
	b.DensityHalo.Add(o.DensityHalo)
	b.DistHalo.Add(o.DistHalo)
	b.Frame.Add(o.Frame)
	b.Migration.Add(o.Migration)
	b.Control.Add(o.Control)
	b.Gather.Add(o.Gather)
}

// Halo returns the aggregate per-phase halo traffic: density and
// distribution halos plus coalesced frames.
func (b CommBytes) Halo() TagBytes {
	var t TagBytes
	t.Add(b.DensityHalo)
	t.Add(b.DistHalo)
	t.Add(b.Frame)
	return t
}

// Total returns the aggregate over every message class.
func (b CommBytes) Total() TagBytes {
	t := b.Halo()
	t.Add(b.Migration)
	t.Add(b.Control)
	t.Add(b.Gather)
	return t
}

// Total returns the node's total accounted time.
func (b Breakdown) Total() float64 {
	return b.Computation + b.Communication + b.Remapping + b.Checkpoint
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Computation += o.Computation
	b.Communication += o.Communication
	b.Remapping += o.Remapping
	b.Checkpoint += o.Checkpoint
	b.Overlap += o.Overlap
	b.Bytes.Add(o.Bytes)
}

// CommStats counts the resilience-layer events of one node: how often
// the communication substrate retried, timed out, or repaired perturbed
// traffic. Zero everywhere on a healthy dedicated cluster.
type CommStats struct {
	// Retries counts retried send/receive attempts.
	Retries int64
	// Timeouts counts expired per-op receive deadlines.
	Timeouts int64
	// Duplicates, Reordered and Corrupt count frames the receive path
	// repaired (discarded duplicate, stashed out-of-order, discarded
	// corrupt).
	Duplicates, Reordered, Corrupt int64
	// Bytes is the node's wire payload volume by message class, counted
	// at the solver layer (present whether or not a resilience wrapper
	// is stacked underneath).
	Bytes CommBytes
}

// Add accumulates another node's counters.
func (s *CommStats) Add(o CommStats) {
	s.Retries += o.Retries
	s.Timeouts += o.Timeouts
	s.Duplicates += o.Duplicates
	s.Reordered += o.Reordered
	s.Corrupt += o.Corrupt
	s.Bytes.Add(o.Bytes)
}

// Recovered is the total number of masked fault events.
func (s CommStats) Recovered() int64 {
	return s.Retries + s.Duplicates + s.Reordered + s.Corrupt
}

// Profile collects breakdowns for all nodes of a run.
type Profile struct {
	Nodes []Breakdown
	// Comm holds the per-node resilience counters, indexed like Nodes.
	Comm []CommStats
}

// New creates a profile for p nodes.
func New(p int) *Profile {
	return &Profile{Nodes: make([]Breakdown, p), Comm: make([]CommStats, p)}
}

// AddCommStats accumulates resilience counters for node i.
func (p *Profile) AddCommStats(i int, s CommStats) { p.Comm[i].Add(s) }

// SumComm returns the cluster-wide aggregate resilience counters.
func (p *Profile) SumComm() CommStats {
	var s CommStats
	for _, c := range p.Comm {
		s.Add(c)
	}
	return s
}

// AddComputation charges t seconds of compute to node i.
func (p *Profile) AddComputation(i int, t float64) { p.Nodes[i].Computation += t }

// AddCommunication charges t seconds of communication/wait to node i.
func (p *Profile) AddCommunication(i int, t float64) { p.Nodes[i].Communication += t }

// AddRemapping charges t seconds of remapping work to node i.
func (p *Profile) AddRemapping(i int, t float64) { p.Nodes[i].Remapping += t }

// AddCheckpoint charges t seconds of checkpoint/recovery work to node i.
func (p *Profile) AddCheckpoint(i int, t float64) { p.Nodes[i].Checkpoint += t }

// MaxTotal returns the largest per-node total (the run's makespan when
// nodes are phase-synchronized).
func (p *Profile) MaxTotal() float64 {
	var m float64
	for _, b := range p.Nodes {
		if t := b.Total(); t > m {
			m = t
		}
	}
	return m
}

// Sum returns the cluster-wide aggregate breakdown.
func (p *Profile) Sum() Breakdown {
	var s Breakdown
	for _, b := range p.Nodes {
		s.Add(b)
	}
	return s
}

// String renders the per-node stacked columns as an ASCII table, the
// textual analogue of Figure 9.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%4s %12s %14s %10s %10s %10s %10s\n", "node", "comp (s)", "comm (s)", "remap (s)", "ckpt (s)", "ovlp (s)", "total (s)")
	for i, b := range p.Nodes {
		fmt.Fprintf(&sb, "%4d %12.2f %14.2f %10.2f %10.2f %10.2f %10.2f\n",
			i, b.Computation, b.Communication, b.Remapping, b.Checkpoint, b.Overlap, b.Total())
	}
	return sb.String()
}
