package predict_test

import (
	"fmt"

	"microslip/internal/predict"
)

// One transient spike among ten phases barely moves the harmonic mean —
// the property that makes the paper's remapping "lazy" — while the
// last-value predictor overreacts by a factor of 25.
func ExampleHarmonicMean() {
	h := predict.NewHarmonicMean(10)
	l := predict.NewLastValue()
	for i := 0; i < 9; i++ {
		h.Observe(0.4)
		l.Observe(0.4)
	}
	h.Observe(10.0) // a 25x load spike in the most recent phase
	l.Observe(10.0)
	fmt.Printf("harmonic:   %.2f s\n", h.Predict())
	fmt.Printf("last-value: %.2f s\n", l.Predict())
	// Output:
	// harmonic:   0.44 s
	// last-value: 10.00 s
}
