package predict

import (
	"math"
	"math/rand"
	"testing"
)

// Slice-based reference implementations, the pre-incremental O(K)
// forms the ring-local accumulators must stay equivalent to.

func refHarmonic(w *window) float64 {
	if w.n == 0 {
		return 0
	}
	var inv float64
	for _, t := range w.values() {
		if t <= 0 {
			continue
		}
		inv += 1 / t
	}
	if inv == 0 {
		return 0
	}
	return float64(w.n) / inv
}

func refMean(w *window) float64 {
	if w.n == 0 {
		return 0
	}
	var s float64
	for _, t := range w.values() {
		s += t
	}
	return s / float64(w.n)
}

func refTendency(w *window) float64 {
	vs := w.values()
	if len(vs) == 0 {
		return 0
	}
	last := vs[len(vs)-1]
	if len(vs) == 1 {
		return last
	}
	incr := (vs[len(vs)-1] - vs[0]) / float64(len(vs)-1)
	p := last + incr
	if p <= 0 {
		p = last
	}
	return p
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// Random observation streams — including zero and negative phase times
// (the reference skips nonpositive reciprocals), long runs that wrap
// the ring many times, and interleaved Resets — must leave the
// incremental predictors equivalent to the slice-based reference at
// every step.
func TestIncrementalMatchesSliceReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		h := NewHarmonicMean(k)
		a := NewArithmeticMean(k)
		td := NewTendency(k + 1) // Tendency requires K >= 2
		n := 200 + rng.Intn(200)
		for i := 0; i < n; i++ {
			var v float64
			switch rng.Intn(10) {
			case 0:
				v = 0
			case 1:
				v = -rng.Float64()
			default:
				v = math.Ldexp(rng.Float64()+1e-3, rng.Intn(20)-10)
			}
			if rng.Intn(97) == 0 {
				h.Reset()
				a.Reset()
				td.Reset()
			}
			h.Observe(v)
			a.Observe(v)
			td.Observe(v)
			if got, want := h.Predict(), refHarmonic(h.w); !closeEnough(got, want) {
				t.Fatalf("trial %d step %d: harmonic %v, reference %v", trial, i, got, want)
			}
			if got, want := a.Predict(), refMean(a.w); !closeEnough(got, want) {
				t.Fatalf("trial %d step %d: mean %v, reference %v", trial, i, got, want)
			}
			if got, want := td.Predict(), refTendency(td.w); got != want {
				t.Fatalf("trial %d step %d: tendency %v, reference %v", trial, i, got, want)
			}
		}
	}
}

// Observe and Predict sit inside the per-phase remap loop of every
// rank; neither may allocate.
func TestPredictorsZeroAllocs(t *testing.T) {
	preds := []Predictor{
		NewHarmonicMean(10),
		NewArithmeticMean(10),
		NewTendency(10),
		NewLastValue(),
		NewExpSmoothing(0.5),
	}
	for _, p := range preds {
		for i := 0; i < 25; i++ {
			p.Observe(0.1 + float64(i))
		}
		v := 0.7
		if allocs := testing.AllocsPerRun(20, func() {
			p.Observe(v)
			_ = p.Predict()
			v += 0.01
		}); allocs != 0 {
			t.Errorf("%s: %v allocs per Observe+Predict, want 0", p.Name(), allocs)
		}
	}
}
