// Package predict implements the per-node phase-time predictors used to
// drive remapping decisions. The paper's choice (Section 3.4) is the
// harmonic average of the last K sampled phase times, which a single
// transient spike barely moves — the "lazy" property that prevents
// migration oscillation. Alternative predictors from the load-prediction
// literature (last-value, arithmetic mean, exponential smoothing,
// tendency-based) are provided for the ablation benchmarks.
package predict

import "fmt"

// Predictor forecasts the next phase's execution time on a node from
// the times observed so far. Predict returns 0 until the first
// observation.
type Predictor interface {
	Name() string
	Observe(t float64)
	Predict() float64
	Reset()
}

// window is a fixed-size ring of the most recent observations.
type window struct {
	buf  []float64
	n    int // valid entries
	next int // ring head
}

func newWindow(k int) *window {
	if k < 1 {
		panic(fmt.Sprintf("predict: window size %d", k))
	}
	return &window{buf: make([]float64, k)}
}

func (w *window) push(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

func (w *window) reset() { w.n, w.next = 0, 0 }

// values returns the valid entries, oldest first.
func (w *window) values() []float64 {
	out := make([]float64, 0, w.n)
	start := (w.next - w.n + len(w.buf)) % len(w.buf)
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(start+i)%len(w.buf)])
	}
	return out
}

// HarmonicMean is the paper's predictor: K / sum(1/t_i) over the last K
// phases. Because the reciprocal of a large spike is tiny, one slow
// phase among K fast ones barely raises the prediction, so no migration
// is triggered "unless this machine is really slow for the last K
// phases" (the paper uses K = 10).
type HarmonicMean struct{ w *window }

// NewHarmonicMean creates the predictor with window K.
func NewHarmonicMean(k int) *HarmonicMean { return &HarmonicMean{w: newWindow(k)} }

func (h *HarmonicMean) Name() string      { return "harmonic" }
func (h *HarmonicMean) Observe(t float64) { h.w.push(t) }
func (h *HarmonicMean) Reset()            { h.w.reset() }

func (h *HarmonicMean) Predict() float64 {
	if h.w.n == 0 {
		return 0
	}
	var inv float64
	for _, t := range h.w.values() {
		if t <= 0 {
			continue
		}
		inv += 1 / t
	}
	if inv == 0 {
		return 0
	}
	return float64(h.w.n) / inv
}

// LastValue predicts the most recent observation; the literature's
// "future load is closest to the most recent data" model, prone to
// migration oscillation under rapidly changing sharing patterns.
type LastValue struct{ last float64 }

// NewLastValue creates the predictor.
func NewLastValue() *LastValue { return &LastValue{} }

func (l *LastValue) Name() string      { return "last" }
func (l *LastValue) Observe(t float64) { l.last = t }
func (l *LastValue) Predict() float64  { return l.last }
func (l *LastValue) Reset()            { l.last = 0 }

// ArithmeticMean averages the last K observations.
type ArithmeticMean struct{ w *window }

// NewArithmeticMean creates the predictor with window K.
func NewArithmeticMean(k int) *ArithmeticMean { return &ArithmeticMean{w: newWindow(k)} }

func (a *ArithmeticMean) Name() string      { return "mean" }
func (a *ArithmeticMean) Observe(t float64) { a.w.push(t) }
func (a *ArithmeticMean) Reset()            { a.w.reset() }

func (a *ArithmeticMean) Predict() float64 {
	if a.w.n == 0 {
		return 0
	}
	var s float64
	for _, t := range a.w.values() {
		s += t
	}
	return s / float64(a.w.n)
}

// ExpSmoothing is exponentially weighted smoothing with factor alpha in
// (0, 1]: higher alpha weights recent data more (the tendency of [46]
// to emphasize fresh samples).
type ExpSmoothing struct {
	alpha float64
	val   float64
	seen  bool
}

// NewExpSmoothing creates the predictor.
func NewExpSmoothing(alpha float64) *ExpSmoothing {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("predict: alpha %v out of (0,1]", alpha))
	}
	return &ExpSmoothing{alpha: alpha}
}

func (e *ExpSmoothing) Name() string { return "expsmooth" }

func (e *ExpSmoothing) Observe(t float64) {
	if !e.seen {
		e.val, e.seen = t, true
		return
	}
	e.val = e.alpha*t + (1-e.alpha)*e.val
}

func (e *ExpSmoothing) Predict() float64 {
	if !e.seen {
		return 0
	}
	return e.val
}

func (e *ExpSmoothing) Reset() { e.val, e.seen = 0, false }

// Tendency extrapolates the recent trend: last value plus the mean
// increment over the window (a homeostatic/tendency-based model in the
// spirit of Yang, Foster and Schopf). Predictions are clamped to be
// positive.
type Tendency struct{ w *window }

// NewTendency creates the predictor with window K.
func NewTendency(k int) *Tendency {
	if k < 2 {
		panic("predict: tendency window must be >= 2")
	}
	return &Tendency{w: newWindow(k)}
}

func (td *Tendency) Name() string      { return "tendency" }
func (td *Tendency) Observe(t float64) { td.w.push(t) }
func (td *Tendency) Reset()            { td.w.reset() }

func (td *Tendency) Predict() float64 {
	vs := td.w.values()
	if len(vs) == 0 {
		return 0
	}
	last := vs[len(vs)-1]
	if len(vs) == 1 {
		return last
	}
	incr := (vs[len(vs)-1] - vs[0]) / float64(len(vs)-1)
	p := last + incr
	if p <= 0 {
		p = last
	}
	return p
}
