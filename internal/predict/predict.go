// Package predict implements the per-node phase-time predictors used to
// drive remapping decisions. The paper's choice (Section 3.4) is the
// harmonic average of the last K sampled phase times, which a single
// transient spike barely moves — the "lazy" property that prevents
// migration oscillation. Alternative predictors from the load-prediction
// literature (last-value, arithmetic mean, exponential smoothing,
// tendency-based) are provided for the ablation benchmarks.
package predict

import "fmt"

// Predictor forecasts the next phase's execution time on a node from
// the times observed so far. Predict returns 0 until the first
// observation.
type Predictor interface {
	Name() string
	Observe(t float64)
	Predict() float64
	Reset()
}

// window is a fixed-size ring of the most recent observations.
type window struct {
	buf  []float64
	n    int // valid entries
	next int // ring head
}

func newWindow(k int) *window {
	if k < 1 {
		panic(fmt.Sprintf("predict: window size %d", k))
	}
	return &window{buf: make([]float64, k)}
}

// push appends v, returning the evicted observation and whether one
// was evicted (the ring was full), so predictors can maintain O(1)
// incremental accumulators.
func (w *window) push(v float64) (evicted float64, wasFull bool) {
	evicted, wasFull = w.buf[w.next], w.n == len(w.buf)
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	return evicted, wasFull
}

func (w *window) reset() { w.n, w.next = 0, 0 }

// wrapped reports whether the ring head just returned to slot 0 — a
// natural point for accumulator-based predictors to re-sum exactly,
// which bounds floating-point drift to one window's worth of updates.
func (w *window) wrapped() bool { return w.next == 0 }

// first returns the oldest valid entry.
func (w *window) first() float64 {
	return w.buf[(w.next-w.n+len(w.buf))%len(w.buf)]
}

// last returns the most recent entry.
func (w *window) last() float64 {
	return w.buf[(w.next-1+len(w.buf))%len(w.buf)]
}

// values returns the valid entries, oldest first. It allocates, so hot
// paths use the incremental accumulators instead; it remains the
// reference the property tests check those accumulators against.
func (w *window) values() []float64 {
	out := make([]float64, 0, w.n)
	start := (w.next - w.n + len(w.buf)) % len(w.buf)
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(start+i)%len(w.buf)])
	}
	return out
}

// HarmonicMean is the paper's predictor: K / sum(1/t_i) over the last K
// phases. Because the reciprocal of a large spike is tiny, one slow
// phase among K fast ones barely raises the prediction, so no migration
// is triggered "unless this machine is really slow for the last K
// phases" (the paper uses K = 10).
// Observe and Predict are both O(1): the reciprocal sum is maintained
// incrementally as the ring evicts and admits observations (Predict is
// called once per plane-owning rank inside every remap round, so the
// old O(K)-with-allocation evaluation sat on the remap hot path). The
// sum is re-accumulated exactly from the ring each time the head
// wraps, which bounds floating-point drift to one window of updates.
type HarmonicMean struct {
	w   *window
	inv float64 // sum of 1/t over the window's positive entries
}

// NewHarmonicMean creates the predictor with window K.
func NewHarmonicMean(k int) *HarmonicMean { return &HarmonicMean{w: newWindow(k)} }

func (h *HarmonicMean) Name() string { return "harmonic" }

func (h *HarmonicMean) Observe(t float64) {
	evicted, wasFull := h.w.push(t)
	if h.w.wrapped() {
		h.inv = 0
		for _, v := range h.w.buf[:h.w.n] {
			if v > 0 {
				h.inv += 1 / v
			}
		}
		return
	}
	if wasFull && evicted > 0 {
		h.inv -= 1 / evicted
	}
	if t > 0 {
		h.inv += 1 / t
	}
}

func (h *HarmonicMean) Reset() { h.w.reset(); h.inv = 0 }

func (h *HarmonicMean) Predict() float64 {
	if h.w.n == 0 || h.inv <= 0 {
		return 0
	}
	return float64(h.w.n) / h.inv
}

// LastValue predicts the most recent observation; the literature's
// "future load is closest to the most recent data" model, prone to
// migration oscillation under rapidly changing sharing patterns.
type LastValue struct{ last float64 }

// NewLastValue creates the predictor.
func NewLastValue() *LastValue { return &LastValue{} }

func (l *LastValue) Name() string      { return "last" }
func (l *LastValue) Observe(t float64) { l.last = t }
func (l *LastValue) Predict() float64  { return l.last }
func (l *LastValue) Reset()            { l.last = 0 }

// ArithmeticMean averages the last K observations. Like HarmonicMean,
// the sum is maintained incrementally (O(1) Observe and Predict) and
// re-accumulated exactly at every ring wrap to bound drift.
type ArithmeticMean struct {
	w   *window
	sum float64
}

// NewArithmeticMean creates the predictor with window K.
func NewArithmeticMean(k int) *ArithmeticMean { return &ArithmeticMean{w: newWindow(k)} }

func (a *ArithmeticMean) Name() string { return "mean" }

func (a *ArithmeticMean) Observe(t float64) {
	evicted, wasFull := a.w.push(t)
	if a.w.wrapped() {
		a.sum = 0
		for _, v := range a.w.buf[:a.w.n] {
			a.sum += v
		}
		return
	}
	if wasFull {
		a.sum -= evicted
	}
	a.sum += t
}

func (a *ArithmeticMean) Reset() { a.w.reset(); a.sum = 0 }

func (a *ArithmeticMean) Predict() float64 {
	if a.w.n == 0 {
		return 0
	}
	return a.sum / float64(a.w.n)
}

// ExpSmoothing is exponentially weighted smoothing with factor alpha in
// (0, 1]: higher alpha weights recent data more (the tendency of [46]
// to emphasize fresh samples).
type ExpSmoothing struct {
	alpha float64
	val   float64
	seen  bool
}

// NewExpSmoothing creates the predictor.
func NewExpSmoothing(alpha float64) *ExpSmoothing {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("predict: alpha %v out of (0,1]", alpha))
	}
	return &ExpSmoothing{alpha: alpha}
}

func (e *ExpSmoothing) Name() string { return "expsmooth" }

func (e *ExpSmoothing) Observe(t float64) {
	if !e.seen {
		e.val, e.seen = t, true
		return
	}
	e.val = e.alpha*t + (1-e.alpha)*e.val
}

func (e *ExpSmoothing) Predict() float64 {
	if !e.seen {
		return 0
	}
	return e.val
}

func (e *ExpSmoothing) Reset() { e.val, e.seen = 0, false }

// Tendency extrapolates the recent trend: last value plus the mean
// increment over the window (a homeostatic/tendency-based model in the
// spirit of Yang, Foster and Schopf). Predictions are clamped to be
// positive.
type Tendency struct{ w *window }

// NewTendency creates the predictor with window K.
func NewTendency(k int) *Tendency {
	if k < 2 {
		panic("predict: tendency window must be >= 2")
	}
	return &Tendency{w: newWindow(k)}
}

func (td *Tendency) Name() string      { return "tendency" }
func (td *Tendency) Observe(t float64) { td.w.push(t) }
func (td *Tendency) Reset()            { td.w.reset() }

// Predict is O(1): the trend only needs the window's oldest and newest
// entries, both direct ring reads.
func (td *Tendency) Predict() float64 {
	if td.w.n == 0 {
		return 0
	}
	last := td.w.last()
	if td.w.n == 1 {
		return last
	}
	incr := (last - td.w.first()) / float64(td.w.n-1)
	p := last + incr
	if p <= 0 {
		p = last
	}
	return p
}
