package predict

import "fmt"

// Weighted wraps a predictor so observations are normalized by a
// static cost weight before they enter the window and predictions are
// scaled back on the way out. The refined-grid scheduler uses one per
// refinement level with weight = the level's site updates per
// composite step: the inner windows then track comparable per-site
// times, so a worker re-split (which changes each level's absolute
// phase time) perturbs every level's normalized history identically
// instead of poisoning the windows with a mid-run regime change.
type Weighted struct {
	inner  Predictor
	weight float64
}

// NewWeighted wraps inner with a positive cost weight.
func NewWeighted(inner Predictor, weight float64) *Weighted {
	if weight <= 0 {
		panic(fmt.Sprintf("predict: weight %v must be positive", weight))
	}
	return &Weighted{inner: inner, weight: weight}
}

func (w *Weighted) Name() string      { return w.inner.Name() + "-weighted" }
func (w *Weighted) Observe(t float64) { w.inner.Observe(t / w.weight) }
func (w *Weighted) Predict() float64  { return w.weight * w.inner.Predict() }
func (w *Weighted) Reset()            { w.inner.Reset() }
