package predict

import (
	"math"
	"testing"
)

// A weighted predictor over a constant per-site rate must predict the
// level's absolute time: observations divided by the weight on the way
// in, predictions multiplied by it on the way out.
func TestWeightedRoundTrip(t *testing.T) {
	w := NewWeighted(NewLastValue(), 2560)
	w.Observe(2560 * 3.5e-6)
	if got, want := w.Predict(), 2560*3.5e-6; math.Abs(got-want) > 1e-12*want {
		t.Errorf("Predict() = %v, want %v", got, want)
	}
	if got := w.Name(); got != "last-weighted" {
		t.Errorf("Name() = %q", got)
	}
}

// Two weighted predictors sharing one per-site rate but different
// weights must predict times proportional to their weights — the
// property the refined scheduler's cost split relies on.
func TestWeightedProportionalPredictions(t *testing.T) {
	a := NewWeighted(NewHarmonicMean(4), 100)
	b := NewWeighted(NewHarmonicMean(4), 400)
	for i := 0; i < 6; i++ {
		rate := 2e-6
		a.Observe(100 * rate)
		b.Observe(400 * rate)
	}
	pa, pb := a.Predict(), b.Predict()
	if pa <= 0 || math.Abs(pb/pa-4) > 1e-9 {
		t.Errorf("predictions %v, %v not in 1:4 ratio", pa, pb)
	}
}

// Reset must pass through to the inner predictor, and an empty
// weighted predictor returns the inner's no-observation zero.
func TestWeightedReset(t *testing.T) {
	w := NewWeighted(NewLastValue(), 7)
	if got := w.Predict(); got != 0 {
		t.Errorf("empty Predict() = %v, want 0", got)
	}
	w.Observe(14)
	w.Reset()
	if got := w.Predict(); got != 0 {
		t.Errorf("Predict() after Reset = %v, want 0", got)
	}
}

// A non-positive weight is a construction bug.
func TestWeightedInvalidWeightPanics(t *testing.T) {
	for _, weight := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeighted(weight=%v) did not panic", weight)
				}
			}()
			NewWeighted(NewLastValue(), weight)
		}()
	}
}
