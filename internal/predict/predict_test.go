package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyPredictorsReturnZero(t *testing.T) {
	ps := []Predictor{
		NewHarmonicMean(10), NewLastValue(), NewArithmeticMean(5),
		NewExpSmoothing(0.5), NewTendency(4),
	}
	for _, p := range ps {
		if got := p.Predict(); got != 0 {
			t.Errorf("%s: empty Predict = %v, want 0", p.Name(), got)
		}
	}
}

func TestHarmonicMeanConstantSeries(t *testing.T) {
	h := NewHarmonicMean(10)
	for i := 0; i < 20; i++ {
		h.Observe(0.4)
	}
	if math.Abs(h.Predict()-0.4) > 1e-12 {
		t.Errorf("Predict = %v, want 0.4", h.Predict())
	}
}

// The paper's motivating property: one spike among K observations
// barely moves the harmonic mean, while it shifts the arithmetic mean
// substantially.
func TestHarmonicMeanIsSpikeRobust(t *testing.T) {
	h := NewHarmonicMean(10)
	a := NewArithmeticMean(10)
	for i := 0; i < 9; i++ {
		h.Observe(0.4)
		a.Observe(0.4)
	}
	h.Observe(10.0) // one 25x spike
	a.Observe(10.0)
	if h.Predict() > 0.45 {
		t.Errorf("harmonic mean moved to %v after one spike", h.Predict())
	}
	if a.Predict() < 1.3 {
		t.Errorf("arithmetic mean only moved to %v; spike-robustness comparison broken", a.Predict())
	}
}

// Property: harmonic mean <= arithmetic mean for positive data (AM-HM
// inequality), and both lie within [min, max] of the window.
func TestHarmonicVsArithmetic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(10)
		h := NewHarmonicMean(k)
		a := NewArithmeticMean(k)
		lo, hi := math.Inf(1), math.Inf(-1)
		n := k + rng.Intn(20)
		vals := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := 0.01 + rng.Float64()*10
			h.Observe(v)
			a.Observe(v)
			vals = append(vals, v)
		}
		for _, v := range vals[len(vals)-min(k, len(vals)):] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		hp, ap := h.Predict(), a.Predict()
		return hp <= ap+1e-12 && hp >= lo-1e-12 && ap <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindowEviction(t *testing.T) {
	a := NewArithmeticMean(3)
	for _, v := range []float64{100, 1, 2, 3} { // 100 must be evicted
		a.Observe(v)
	}
	if math.Abs(a.Predict()-2) > 1e-12 {
		t.Errorf("Predict = %v, want 2 (old value not evicted)", a.Predict())
	}
}

func TestLastValue(t *testing.T) {
	l := NewLastValue()
	l.Observe(1)
	l.Observe(7)
	if l.Predict() != 7 {
		t.Errorf("Predict = %v, want 7", l.Predict())
	}
	l.Reset()
	if l.Predict() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestExpSmoothing(t *testing.T) {
	e := NewExpSmoothing(0.5)
	e.Observe(2)
	e.Observe(4)
	if math.Abs(e.Predict()-3) > 1e-12 {
		t.Errorf("Predict = %v, want 3", e.Predict())
	}
	// alpha = 1 tracks the last value exactly.
	e1 := NewExpSmoothing(1)
	e1.Observe(2)
	e1.Observe(9)
	if e1.Predict() != 9 {
		t.Errorf("alpha=1 Predict = %v, want 9", e1.Predict())
	}
}

func TestTendencyExtrapolates(t *testing.T) {
	td := NewTendency(4)
	for _, v := range []float64{1, 2, 3, 4} {
		td.Observe(v)
	}
	if math.Abs(td.Predict()-5) > 1e-12 {
		t.Errorf("Predict = %v, want 5", td.Predict())
	}
	// Falling trend never predicts a non-positive time.
	td.Reset()
	td.Observe(4)
	td.Observe(0.1)
	if td.Predict() <= 0 {
		t.Errorf("tendency predicted non-positive %v", td.Predict())
	}
}

func TestResetAll(t *testing.T) {
	ps := []Predictor{
		NewHarmonicMean(5), NewLastValue(), NewArithmeticMean(5),
		NewExpSmoothing(0.3), NewTendency(3),
	}
	for _, p := range ps {
		p.Observe(5)
		p.Reset()
		if p.Predict() != 0 {
			t.Errorf("%s: Predict after Reset = %v", p.Name(), p.Predict())
		}
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"window0":   func() { NewHarmonicMean(0) },
		"alpha0":    func() { NewExpSmoothing(0) },
		"alpha2":    func() { NewExpSmoothing(2) },
		"tendency1": func() { NewTendency(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHarmonicIgnoresNonPositive(t *testing.T) {
	h := NewHarmonicMean(4)
	h.Observe(0)
	h.Observe(2)
	h.Observe(2)
	got := h.Predict()
	// Zero observations carry no rate information and are skipped in the
	// reciprocal sum; the prediction stays finite.
	if math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Errorf("Predict = %v with zero observation", got)
	}
}
