package field

import "fmt"

// Slab stores the x-planes a worker currently owns, one independently
// allocated plane per lattice x-index. Because each plane is its own
// slice, migrating a plane between neighbouring workers is a slice
// handoff (or a single contiguous network write), which is exactly the
// unit of transfer used by the dynamic remapping schemes: the minimal
// migration is one 2-D plane (Section 3.4 of the paper).
//
// A Slab covers the global x-range [Start, Start+len(Planes)). Ghost
// planes received from neighbours are held separately by the runner.
type Slab struct {
	NY, NZ, Q int // Q == 1 for scalar slabs
	Start     int // global x index of Planes[0]
	Planes    [][]float64
}

// NewSlab allocates a slab covering global x-range [start, start+count).
func NewSlab(ny, nz, q, start, count int) *Slab {
	if ny <= 0 || nz <= 0 || q <= 0 || count < 0 {
		panic(fmt.Sprintf("field: invalid slab %dx%dx%d count %d", ny, nz, q, count))
	}
	s := &Slab{NY: ny, NZ: nz, Q: q, Start: start, Planes: make([][]float64, count)}
	for i := range s.Planes {
		s.Planes[i] = make([]float64, ny*nz*q)
	}
	return s
}

// PlaneSize returns the number of float64 values in one plane.
func (s *Slab) PlaneSize() int { return s.NY * s.NZ * s.Q }

// Count returns the number of planes currently owned.
func (s *Slab) Count() int { return len(s.Planes) }

// End returns the exclusive global end index Start+Count().
func (s *Slab) End() int { return s.Start + len(s.Planes) }

// Plane returns the plane at global x index gx.
func (s *Slab) Plane(gx int) []float64 {
	return s.Planes[gx-s.Start]
}

// At returns value (y, z, i) within the plane at global x index gx.
func (s *Slab) At(gx, y, z, i int) float64 {
	return s.Planes[gx-s.Start][(y*s.NZ+z)*s.Q+i]
}

// Set stores value (y, z, i) within the plane at global x index gx.
func (s *Slab) Set(gx, y, z, i int, v float64) {
	s.Planes[gx-s.Start][(y*s.NZ+z)*s.Q+i] = v
}

// PopLeft removes and returns the n leftmost planes; Start advances by n.
func (s *Slab) PopLeft(n int) [][]float64 {
	if n < 0 || n > len(s.Planes) {
		panic(fmt.Sprintf("field: PopLeft(%d) from slab of %d planes", n, len(s.Planes)))
	}
	out := s.Planes[:n:n]
	s.Planes = s.Planes[n:]
	s.Start += n
	return out
}

// PopRight removes and returns the n rightmost planes (in ascending x order).
func (s *Slab) PopRight(n int) [][]float64 {
	if n < 0 || n > len(s.Planes) {
		panic(fmt.Sprintf("field: PopRight(%d) from slab of %d planes", n, len(s.Planes)))
	}
	k := len(s.Planes) - n
	out := s.Planes[k:len(s.Planes):len(s.Planes)]
	s.Planes = s.Planes[:k]
	return out
}

// PushLeft prepends planes (in ascending x order); Start retreats.
func (s *Slab) PushLeft(planes [][]float64) {
	for _, p := range planes {
		if len(p) != s.PlaneSize() {
			panic(fmt.Sprintf("field: PushLeft plane size %d, want %d", len(p), s.PlaneSize()))
		}
	}
	s.Planes = append(append(make([][]float64, 0, len(planes)+len(s.Planes)), planes...), s.Planes...)
	s.Start -= len(planes)
}

// PushRight appends planes (in ascending x order).
func (s *Slab) PushRight(planes [][]float64) {
	for _, p := range planes {
		if len(p) != s.PlaneSize() {
			panic(fmt.Sprintf("field: PushRight plane size %d, want %d", len(p), s.PlaneSize()))
		}
	}
	s.Planes = append(s.Planes, planes...)
}
