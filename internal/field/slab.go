package field

import (
	"fmt"

	"microslip/internal/num"
)

// SlabOf stores the x-planes a worker currently owns, one independently
// allocated plane per lattice x-index. Because each plane is its own
// slice, migrating a plane between neighbouring workers is a slice
// handoff (or a single contiguous network write), which is exactly the
// unit of transfer used by the dynamic remapping schemes: the minimal
// migration is one 2-D plane (Section 3.4 of the paper).
//
// A slab covers the global x-range [Start, Start+len(Planes)). Ghost
// planes received from neighbours are held separately by the runner.
//
// Internally the plane headers live in a deque: a backing array with
// slack on both ends, so the push/pop oscillation of dynamic remapping
// moves O(planes transferred) headers and allocates nothing in the
// steady state (the backing array grows geometrically and is then
// reused). Planes is the live window into that storage; treat it as
// read-only and re-read it after any Push/Pop.
type SlabOf[T num.Float] struct {
	NY, NZ, Q int    // Q == 1 for scalar slabs
	Layout    Layout // per-plane ordering; meaningful only when Q > 1
	Start     int    // global x index of Planes[0]
	// Planes is the owned window, ascending x. It aliases the internal
	// deque storage: valid until the next Push/Pop, and must not be
	// appended to or resliced by callers.
	Planes [][]T

	buf [][]T // deque storage; Planes == buf[off : off+len(Planes)]
	off int
}

// Slab is the double-precision slab used by the parallel layer and all
// historical call sites.
type Slab = SlabOf[float64]

// NewSlabOf allocates a slab of T covering global x-range [start, start+count).
func NewSlabOf[T num.Float](ny, nz, q, start, count int) *SlabOf[T] {
	return NewSlabLayoutOf[T](ny, nz, q, start, count, AoS)
}

// NewSlabLayoutOf allocates a slab of T covering global x-range
// [start, start+count) with the given per-plane layout.
func NewSlabLayoutOf[T num.Float](ny, nz, q, start, count int, layout Layout) *SlabOf[T] {
	if ny <= 0 || nz <= 0 || q <= 0 || count < 0 {
		panic(fmt.Sprintf("field: invalid slab %dx%dx%d count %d", ny, nz, q, count))
	}
	s := &SlabOf[T]{NY: ny, NZ: nz, Q: q, Layout: layout, Start: start, buf: make([][]T, count)}
	for i := range s.buf {
		s.buf[i] = make([]T, ny*nz*q)
	}
	s.Planes = s.buf
	return s
}

// NewSlab allocates a float64 slab covering global x-range [start, start+count).
func NewSlab(ny, nz, q, start, count int) *Slab { return NewSlabOf[float64](ny, nz, q, start, count) }

// NewSlabLayout allocates a float64 slab covering global x-range
// [start, start+count) with the given per-plane layout.
func NewSlabLayout(ny, nz, q, start, count int, layout Layout) *Slab {
	return NewSlabLayoutOf[float64](ny, nz, q, start, count, layout)
}

// PlaneSize returns the number of values in one plane.
func (s *SlabOf[T]) PlaneSize() int { return s.NY * s.NZ * s.Q }

// Count returns the number of planes currently owned.
func (s *SlabOf[T]) Count() int { return len(s.Planes) }

// End returns the exclusive global end index Start+Count().
func (s *SlabOf[T]) End() int { return s.Start + len(s.Planes) }

// Plane returns the plane at global x index gx.
func (s *SlabOf[T]) Plane(gx int) []T {
	return s.Planes[gx-s.Start]
}

// idx returns the within-plane index of (y, z, i) under the layout.
func (s *SlabOf[T]) idx(y, z, i int) int {
	if s.Layout == SoA {
		return i*s.NY*s.NZ + y*s.NZ + z
	}
	return (y*s.NZ+z)*s.Q + i
}

// At returns value (y, z, i) within the plane at global x index gx.
func (s *SlabOf[T]) At(gx, y, z, i int) T {
	return s.Planes[gx-s.Start][s.idx(y, z, i)]
}

// Set stores value (y, z, i) within the plane at global x index gx.
func (s *SlabOf[T]) Set(gx, y, z, i int, v T) {
	s.Planes[gx-s.Start][s.idx(y, z, i)] = v
}

// PopLeft removes and returns the n leftmost planes; Start advances by n.
// The returned slice aliases deque storage: consume it before the next
// Push on this slab.
func (s *SlabOf[T]) PopLeft(n int) [][]T {
	if n < 0 || n > len(s.Planes) {
		panic(fmt.Sprintf("field: PopLeft(%d) from slab of %d planes", n, len(s.Planes)))
	}
	out := s.Planes[:n:n]
	count := len(s.Planes) - n
	s.off += n
	s.Planes = s.buf[s.off : s.off+count]
	s.Start += n
	return out
}

// PopRight removes and returns the n rightmost planes (in ascending x
// order). The returned slice aliases deque storage: consume it before
// the next Push on this slab.
func (s *SlabOf[T]) PopRight(n int) [][]T {
	if n < 0 || n > len(s.Planes) {
		panic(fmt.Sprintf("field: PopRight(%d) from slab of %d planes", n, len(s.Planes)))
	}
	k := len(s.Planes) - n
	out := s.Planes[k:len(s.Planes):len(s.Planes)]
	s.Planes = s.buf[s.off : s.off+k]
	return out
}

// PushLeft prepends planes (in ascending x order); Start retreats. The
// plane headers are copied into the deque, so the argument may be a
// caller-reused buffer.
func (s *SlabOf[T]) PushLeft(planes [][]T) {
	s.checkSizes(planes, "PushLeft")
	k := len(planes)
	if s.off < k {
		s.grow(k, 0)
	}
	copy(s.buf[s.off-k:s.off], planes)
	count := len(s.Planes) + k
	s.off -= k
	s.Planes = s.buf[s.off : s.off+count]
	s.Start -= k
}

// PushRight appends planes (in ascending x order). The plane headers
// are copied into the deque, so the argument may be a caller-reused
// buffer.
func (s *SlabOf[T]) PushRight(planes [][]T) {
	s.checkSizes(planes, "PushRight")
	k := len(planes)
	count := len(s.Planes)
	if s.off+count+k > len(s.buf) {
		s.grow(0, k)
	}
	copy(s.buf[s.off+count:s.off+count+k], planes)
	s.Planes = s.buf[s.off : s.off+count+k]
}

func (s *SlabOf[T]) checkSizes(planes [][]T, op string) {
	for _, p := range planes {
		if len(p) != s.PlaneSize() {
			panic(fmt.Sprintf("field: %s plane size %d, want %d", op, len(p), s.PlaneSize()))
		}
	}
}

// grow reallocates the deque storage with room for needL extra planes on
// the left and needR on the right, plus symmetric geometric slack so a
// sustained push/pop oscillation amortizes to zero allocations.
func (s *SlabOf[T]) grow(needL, needR int) {
	count := len(s.Planes)
	total := count + needL + needR
	slack := total
	if slack < 4 {
		slack = 4
	}
	buf := make([][]T, total+2*slack)
	off := slack + needL
	copy(buf[off:off+count], s.Planes)
	s.buf = buf
	s.off = off
	s.Planes = s.buf[s.off : s.off+count]
}
