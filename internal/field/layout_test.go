package field

import (
	"math"
	"math/rand"
	"testing"
)

// Transposing a random canonical plane to direction-major and back (and
// the reverse round trip) must restore every value bit-for-bit at both
// precisions — the property the solver's layout-boundary conversions
// (halo pack, checkpoint, gather, state snapshot) rely on for
// byte-identical artifacts.
func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ cells, q int }{
		{1, 19}, {6, 19}, {50, 19}, {77, 19}, {200, 19}, {12, 5}, {30, 1},
	}
	for _, sh := range shapes {
		n := sh.cells * sh.q

		aos := make([]float64, n)
		for i := range aos {
			// Full-range bit patterns, not just uniform values, so a lossy
			// conversion (or an index mix-up on a symmetric pattern) cannot
			// hide.
			aos[i] = math.Ldexp(rng.Float64()-0.5, rng.Intn(60)-30)
		}
		soa := make([]float64, n)
		back := make([]float64, n)
		TransposeToSoA(soa, aos, sh.cells, sh.q)
		TransposeToAoS(back, soa, sh.cells, sh.q)
		for i := range aos {
			if math.Float64bits(aos[i]) != math.Float64bits(back[i]) {
				t.Fatalf("f64 cells=%d q=%d: index %d: %v != %v", sh.cells, sh.q, i, back[i], aos[i])
			}
		}
		// Spot-check the forward map itself, not only the round trip.
		for cell := 0; cell < sh.cells; cell++ {
			for i := 0; i < sh.q; i++ {
				if soa[i*sh.cells+cell] != aos[cell*sh.q+i] {
					t.Fatalf("f64 cells=%d q=%d: soa[%d,%d] != aos[%d,%d]", sh.cells, sh.q, i, cell, cell, i)
				}
			}
		}

		aos32 := make([]float32, n)
		for i := range aos32 {
			aos32[i] = float32(math.Ldexp(rng.Float64()-0.5, rng.Intn(30)-15))
		}
		soa32 := make([]float32, n)
		back32 := make([]float32, n)
		TransposeToSoA(soa32, aos32, sh.cells, sh.q)
		TransposeToAoS(back32, soa32, sh.cells, sh.q)
		for i := range aos32 {
			if math.Float32bits(aos32[i]) != math.Float32bits(back32[i]) {
				t.Fatalf("f32 cells=%d q=%d: index %d: %v != %v", sh.cells, sh.q, i, back32[i], aos32[i])
			}
		}
	}
}

// The transpose helpers must reject mismatched slice lengths rather
// than silently truncate.
func TestTransposeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short dst: expected panic")
		}
	}()
	TransposeToSoA(make([]float64, 18), make([]float64, 19), 1, 19)
}

// Layout-aware indexing: a SoA Dist3D and Slab must agree with their
// AoS twins through At/Set for every (x, y, z, i).
func TestLayoutIndexing(t *testing.T) {
	const nx, ny, nz, q = 3, 4, 5, 19
	a := NewDist3DLayoutOf[float64](nx, ny, nz, q, AoS)
	s := NewDist3DLayoutOf[float64](nx, ny, nz, q, SoA)
	v := 0.0
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				for i := 0; i < q; i++ {
					v++
					a.Set(x, y, z, i, v)
					s.Set(x, y, z, i, v)
				}
			}
		}
	}
	for x := 0; x < nx; x++ {
		// Per plane, the SoA storage is the exact transpose of the AoS
		// storage.
		want := make([]float64, ny*nz*q)
		TransposeToSoA(want, a.Plane(x), ny*nz, q)
		got := s.Plane(x)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("plane %d index %d: %v != %v", x, i, got[i], want[i])
			}
		}
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				for i := 0; i < q; i++ {
					if a.At(x, y, z, i) != s.At(x, y, z, i) {
						t.Fatalf("At(%d,%d,%d,%d): %v != %v", x, y, z, i, s.At(x, y, z, i), a.At(x, y, z, i))
					}
				}
			}
		}
	}

	sa := NewSlabLayoutOf[float64](ny, nz, q, 0, nx, AoS)
	ss := NewSlabLayoutOf[float64](ny, nz, q, 0, nx, SoA)
	for x := 0; x < nx; x++ {
		copy(sa.Plane(x), a.Plane(x))
		copy(ss.Plane(x), s.Plane(x))
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				for i := 0; i < q; i++ {
					if sa.At(x, y, z, i) != ss.At(x, y, z, i) {
						t.Fatalf("slab At(%d,%d,%d,%d): %v != %v", x, y, z, i, ss.At(x, y, z, i), sa.At(x, y, z, i))
					}
				}
			}
		}
	}
}
