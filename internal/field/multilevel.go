package field

import "fmt"

// Two-level refined-grid geometry. The refined solver keeps three
// blocks of storage — a fine slab against each y wall and a coarse bulk
// lattice at half resolution — and couples them through overlapping
// ghost rows. This file owns the index arithmetic: block dimensions,
// the coarse<->fine cell maps, and the layout-generic per-plane value
// index the transfer operators use. The alignment is staggered
// volumetric: one coarse cell covers a 2x2x2 brick of fine cells, so
// coarse cell centers sit at fine-coordinate half-offsets and the
// bounce-back wall planes of the coarse lattice land exactly on the
// fine lattice's wall planes (a collocated alignment would shift the
// z walls by one fine unit).
//
// Row layout along y, in local row indices (D = WallLayers):
//
//	bottom slab (NY = D+6): 0 wall | 1..D owned | D+1..D+4 ghost | D+5 closure
//	top slab    (NY = D+6): 0 closure | 1..4 ghost | 5..D+4 owned | D+5 wall
//	coarse      (NY = nb+6): 0 closure | 1,2 ghost | 3..nb+2 owned | nb+3,nb+4 ghost | nb+5 closure
//
// where nb = (GlobalNY-2-2D)/2 and "closure" rows are fake solid walls
// that close each block for the unmodified kernel; the rows they
// pollute are exactly the ghost rows, which are overwritten from the
// other level every composite step. Four fine ghost rows absorb the
// two-rows-per-step stencil reach of the two fine sub-steps between
// exchanges; two coarse ghost rows absorb the one coarse step.

// FineGhostRows is the ghost-row depth of a fine wall slab: the
// stencil reach (psi-gradient plus streaming) is two rows per step and
// the fine level runs two sub-steps between ghost exchanges.
const FineGhostRows = 4

// CoarseGhostRows is the ghost-row depth of the coarse bulk block:
// reach two, one step per exchange.
const CoarseGhostRows = 2

// MultiLevel describes the block decomposition of a two-level refined
// NX x NY x NZ channel with D fine fluid rows kept against each y wall.
type MultiLevel struct {
	NX, NY, NZ int // global fine dimensions
	D          int // fine fluid rows per y wall (WallLayers)
}

// NewMultiLevel validates the decomposition. The constraints are the
// parity and depth requirements of the staggered alignment: NX, NY, NZ
// even so every coarse cell covers a full 2x2x2 fine brick; D >= 4 so
// the coalescence sources (fine owned rows D-3..D) stay inside the
// owned region; NY >= 2D+10 so the coarse block keeps at least four
// owned rows between the two interface regions.
func NewMultiLevel(nx, ny, nz, d int) (MultiLevel, error) {
	m := MultiLevel{NX: nx, NY: ny, NZ: nz, D: d}
	if d < 4 {
		return m, fmt.Errorf("field: refinement wall layers %d < 4", d)
	}
	if nx < 2 || nx%2 != 0 {
		return m, fmt.Errorf("field: refined NX %d must be even and >= 2", nx)
	}
	if nz < 4 || nz%2 != 0 {
		return m, fmt.Errorf("field: refined NZ %d must be even and >= 4", nz)
	}
	if ny%2 != 0 {
		return m, fmt.Errorf("field: refined NY %d must be even", ny)
	}
	if ny < 2*d+10 {
		return m, fmt.Errorf("field: refined NY %d < 2*%d+10 (coarse block needs >= 4 owned rows)", ny, d)
	}
	return m, nil
}

// FineNY returns the y extent of each fine wall slab: D owned fluid
// rows, FineGhostRows ghosts, one real wall and one closure row.
func (m MultiLevel) FineNY() int { return m.D + FineGhostRows + 2 }

// CoarseOwnedRows returns nb, the coarse rows exclusively owning bulk
// fluid.
func (m MultiLevel) CoarseOwnedRows() int { return (m.NY - 2 - 2*m.D) / 2 }

// CoarseDims returns the coarse block dimensions. NZc = NZ/2+1 places
// the coarse z walls so their bounce-back planes coincide exactly with
// the fine lattice's z wall planes under the staggered map.
func (m MultiLevel) CoarseDims() (nx, ny, nz int) {
	return m.NX / 2, m.CoarseOwnedRows() + 2*CoarseGhostRows + 2, m.NZ/2 + 1
}

// CoarseYPos returns the global fine y coordinate of the center of
// coarse row r: the row covers global fine rows {2r+D-5, 2r+D-4}.
func (m MultiLevel) CoarseYPos(r int) float64 { return float64(2*r+m.D) - 4.5 }

// CoarseRowFineRows returns the two global fine rows coarse row r
// covers.
func (m MultiLevel) CoarseRowFineRows(r int) (lo, hi int) {
	lo = 2*r + m.D - 5
	return lo, lo + 1
}

// CoarseZFineZ returns the two global fine z indices coarse column zc
// covers (fluid columns only, zc in 1..NZc-2).
func (m MultiLevel) CoarseZFineZ(zc int) (lo, hi int) { return 2*zc - 1, 2 * zc }

// TopSlabY0 returns the global fine row of the top slab's local row 0.
func (m MultiLevel) TopSlabY0() int { return m.NY - m.FineNY() }

// PlaneIdx returns the index of population i of cell within a
// distribution plane of the given cell count, for either plane layout.
// The transfer operators use it to stay layout-generic: they touch only
// interface rows, so the strided access costs nothing measurable.
func PlaneIdx(l Layout, cells, cell, i int) int {
	if l == SoA {
		return i*cells + cell
	}
	return cell*19 + i
}
