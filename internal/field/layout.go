package field

import (
	"fmt"

	"microslip/internal/num"
)

// Layout selects the in-memory ordering of a distribution plane.
//
// The canonical (wire, checkpoint, State-snapshot) order is always AoS:
// cell-major, velocity index fastest, value (y, z, i) at
// (y*NZ+z)*Q + i. SoA stores the same plane direction-major — value
// (y, z, i) at i*(NY*NZ) + (y*NZ+z) — so a kernel sweeping one
// direction walks a contiguous lane instead of striding at Q-element
// gaps. Everything that crosses a process or persistence boundary
// (halo wire format, coalesced frames, migration payloads, checkpoint
// container, gathered fields) stays in canonical order; SoA holders
// transpose at the plane boundary.
type Layout uint8

const (
	// AoS is cell-major storage, velocity index fastest (canonical).
	AoS Layout = iota
	// SoA is direction-major storage: one contiguous lane per velocity.
	SoA
)

// String returns "aos" or "soa".
func (l Layout) String() string {
	switch l {
	case AoS:
		return "aos"
	case SoA:
		return "soa"
	}
	return fmt.Sprintf("Layout(%d)", uint8(l))
}

// TransposeToSoA rewrites a canonical cell-major plane of cells*q values
// into direction-major order: dst[i*cells + cell] = src[cell*q + i].
// dst and src must not alias.
func TransposeToSoA[T num.Float](dst, src []T, cells, q int) {
	if len(dst) < cells*q || len(src) < cells*q {
		panic(fmt.Sprintf("field: transpose needs %d values, have dst %d src %d", cells*q, len(dst), len(src)))
	}
	for i := 0; i < q; i++ {
		lane := dst[i*cells : (i+1)*cells]
		for cell := 0; cell < cells; cell++ {
			lane[cell] = src[cell*q+i]
		}
	}
}

// TransposeToAoS rewrites a direction-major plane of cells*q values into
// canonical cell-major order: dst[cell*q + i] = src[i*cells + cell].
// dst and src must not alias.
func TransposeToAoS[T num.Float](dst, src []T, cells, q int) {
	if len(dst) < cells*q || len(src) < cells*q {
		panic(fmt.Sprintf("field: transpose needs %d values, have dst %d src %d", cells*q, len(dst), len(src)))
	}
	for i := 0; i < q; i++ {
		lane := src[i*cells : (i+1)*cells]
		for cell := 0; cell < cells; cell++ {
			dst[cell*q+i] = lane[cell]
		}
	}
}
