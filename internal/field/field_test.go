package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalar3DIndexing(t *testing.T) {
	s := NewScalar3D(4, 3, 2)
	if len(s.Data) != 24 {
		t.Fatalf("len(Data) = %d, want 24", len(s.Data))
	}
	n := 0.0
	for x := 0; x < 4; x++ {
		for y := 0; y < 3; y++ {
			for z := 0; z < 2; z++ {
				s.Set(x, y, z, n)
				n++
			}
		}
	}
	// With this layout the flat data is exactly the fill order.
	for i, v := range s.Data {
		if v != float64(i) {
			t.Fatalf("Data[%d] = %v, want %v", i, v, i)
		}
	}
	if s.At(2, 1, 1) != float64(s.Idx(2, 1, 1)) {
		t.Errorf("At/Idx mismatch")
	}
}

func TestScalar3DPlaneIsContiguous(t *testing.T) {
	s := NewScalar3D(5, 4, 3)
	for i := range s.Data {
		s.Data[i] = float64(i)
	}
	p := s.Plane(2)
	if len(p) != 12 {
		t.Fatalf("plane size = %d, want 12", len(p))
	}
	for y := 0; y < 4; y++ {
		for z := 0; z < 3; z++ {
			if p[y*3+z] != s.At(2, y, z) {
				t.Fatalf("plane[%d] != At(2,%d,%d)", y*3+z, y, z)
			}
		}
	}
	// Mutating the plane mutates the field (it is a view).
	p[0] = -1
	if s.At(2, 0, 0) != -1 {
		t.Error("plane is not a view into the field")
	}
}

func TestDist3DIndexing(t *testing.T) {
	f := NewDist3D(3, 2, 2, 19)
	f.Set(1, 1, 0, 7, 3.25)
	if f.At(1, 1, 0, 7) != 3.25 {
		t.Errorf("At = %v, want 3.25", f.At(1, 1, 0, 7))
	}
	c := f.Cell(1, 1, 0)
	if c[7] != 3.25 {
		t.Errorf("Cell[7] = %v, want 3.25", c[7])
	}
	if f.PlaneSize() != 2*2*19 {
		t.Errorf("PlaneSize = %d", f.PlaneSize())
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := NewDist3D(2, 2, 2, 9)
	f.Set(0, 0, 0, 0, 1)
	c := f.Clone()
	c.Set(0, 0, 0, 0, 2)
	if f.At(0, 0, 0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
	s := NewScalar3D(2, 2, 2)
	s.Set(1, 1, 1, 5)
	sc := s.Clone()
	sc.Set(1, 1, 1, 6)
	if s.At(1, 1, 1) != 5 {
		t.Error("Scalar3D Clone shares storage with original")
	}
}

func TestSlabPushPop(t *testing.T) {
	s := NewSlab(2, 2, 1, 10, 5) // planes for x = 10..14
	for gx := 10; gx < 15; gx++ {
		s.Set(gx, 0, 0, 0, float64(gx))
	}
	left := s.PopLeft(2)
	if s.Start != 12 || s.Count() != 3 {
		t.Fatalf("after PopLeft: start %d count %d", s.Start, s.Count())
	}
	if left[0][0] != 10 || left[1][0] != 11 {
		t.Fatalf("PopLeft returned wrong planes: %v %v", left[0][0], left[1][0])
	}
	right := s.PopRight(1)
	if s.End() != 14 || right[0][0] != 14 {
		t.Fatalf("PopRight wrong: end %d plane %v", s.End(), right[0][0])
	}
	s.PushLeft(left)
	if s.Start != 10 || s.At(10, 0, 0, 0) != 10 || s.At(11, 0, 0, 0) != 11 {
		t.Fatalf("PushLeft wrong: start %d", s.Start)
	}
	s.PushRight(right)
	if s.End() != 15 || s.At(14, 0, 0, 0) != 14 {
		t.Fatalf("PushRight wrong: end %d", s.End())
	}
	// Full round trip preserved all planes in order.
	for gx := 10; gx < 15; gx++ {
		if s.At(gx, 0, 0, 0) != float64(gx) {
			t.Errorf("plane %d = %v", gx, s.At(gx, 0, 0, 0))
		}
	}
}

// Property: any sequence of pop/push round trips preserves the slab
// contents and the global coordinate mapping.
func TestSlabMigrationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 3 + rng.Intn(10)
		start := rng.Intn(100)
		s := NewSlab(2, 3, 4, start, count)
		for gx := start; gx < start+count; gx++ {
			for k := 0; k < s.PlaneSize(); k++ {
				s.Planes[gx-start][k] = float64(gx*1000 + k)
			}
		}
		for iter := 0; iter < 20; iter++ {
			n := rng.Intn(s.Count()) // keep at least one plane
			switch rng.Intn(4) {
			case 0:
				s.PushLeft(s.PopLeft(n))
			case 1:
				s.PushRight(s.PopRight(n))
			case 2:
				// Simulate shipping planes right: pop right, push back.
				p := s.PopRight(n)
				s.PushRight(p)
			case 3:
				p := s.PopLeft(n)
				s.PushLeft(p)
			}
		}
		if s.Start != start || s.Count() != count {
			return false
		}
		for gx := start; gx < start+count; gx++ {
			for k := 0; k < s.PlaneSize(); k++ {
				if s.Planes[gx-start][k] != float64(gx*1000+k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSlabPanicsOnBadSize(t *testing.T) {
	s := NewSlab(2, 2, 1, 0, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic pushing wrong-sized plane")
		}
	}()
	s.PushRight([][]float64{make([]float64, 3)})
}

func TestTotalMass(t *testing.T) {
	f := NewDist3D(2, 2, 1, 2)
	for i := range f.Data {
		f.Data[i] = 0.5
	}
	if got := f.TotalMass(); got != float64(len(f.Data))*0.5 {
		t.Errorf("TotalMass = %v", got)
	}
}

// The plane-migration oscillation — pop from one end, push the same
// count back — must stop allocating once the deque has grown its slack:
// this is the slab-side half of the zero-alloc remapping fast path.
func TestSlabPushPopZeroAllocSteadyState(t *testing.T) {
	s := NewSlab(3, 3, 2, 10, 6)
	spare := [][]float64{make([]float64, s.PlaneSize()), make([]float64, s.PlaneSize())}
	warm := func() {
		s.PushLeft(spare)
		copy(spare, s.PopRight(2))
		s.PushRight(spare)
		copy(spare, s.PopLeft(2))
	}
	for i := 0; i < 4; i++ {
		warm()
	}
	if allocs := testing.AllocsPerRun(20, warm); allocs != 0 {
		t.Errorf("push/pop oscillation: %v allocs/op, want 0", allocs)
	}
	if s.Start != 10 || s.Count() != 6 {
		t.Errorf("slab drifted to [%d,+%d)", s.Start, s.Count())
	}
}

// Popped plane headers stay usable until the next push, and pushing
// reuses the caller's header slice without retaining it.
func TestSlabPushCopiesHeaders(t *testing.T) {
	s := NewSlab(2, 2, 1, 0, 3)
	p0 := s.Plane(0)
	hdr := [][]float64{p0}
	s.PopLeft(1)
	s.PushLeft(hdr)
	hdr[0] = nil // caller reuses its buffer
	if s.Plane(0) == nil || &s.Plane(0)[0] != &p0[0] {
		t.Error("PushLeft did not copy the plane header into the deque")
	}
}
