// Package field provides flat-array storage for three-dimensional scalar
// fields and distribution-function fields, plus x-plane (slab) views used
// by the slice domain decomposition.
//
// Layout: index (x, y, z) maps to ((x*NY)+y)*NZ + z, so a fixed-x plane is
// one contiguous block of NY*NZ values. Distribution fields append the
// velocity index as the fastest dimension. Contiguous x-planes make halo
// exchange and lattice-point migration simple copies.
package field

import "fmt"

// Scalar3D is a dense NX x NY x NZ field of float64.
type Scalar3D struct {
	NX, NY, NZ int
	Data       []float64
}

// NewScalar3D allocates a zeroed scalar field.
func NewScalar3D(nx, ny, nz int) *Scalar3D {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("field: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	return &Scalar3D{NX: nx, NY: ny, NZ: nz, Data: make([]float64, nx*ny*nz)}
}

// Idx returns the flat index of (x, y, z).
func (s *Scalar3D) Idx(x, y, z int) int { return (x*s.NY+y)*s.NZ + z }

// At returns the value at (x, y, z).
func (s *Scalar3D) At(x, y, z int) float64 { return s.Data[(x*s.NY+y)*s.NZ+z] }

// Set stores v at (x, y, z).
func (s *Scalar3D) Set(x, y, z int, v float64) { s.Data[(x*s.NY+y)*s.NZ+z] = v }

// PlaneSize returns the number of values in one fixed-x plane.
func (s *Scalar3D) PlaneSize() int { return s.NY * s.NZ }

// Plane returns the contiguous slice backing the fixed-x plane at x.
func (s *Scalar3D) Plane(x int) []float64 {
	p := s.PlaneSize()
	return s.Data[x*p : (x+1)*p]
}

// Fill sets every value to v.
func (s *Scalar3D) Fill(v float64) {
	for i := range s.Data {
		s.Data[i] = v
	}
}

// Clone returns a deep copy.
func (s *Scalar3D) Clone() *Scalar3D {
	c := NewScalar3D(s.NX, s.NY, s.NZ)
	copy(c.Data, s.Data)
	return c
}

// Dist3D is a dense NX x NY x NZ x Q distribution-function field.
type Dist3D struct {
	NX, NY, NZ, Q int
	Data          []float64
}

// NewDist3D allocates a zeroed distribution field with Q velocities.
func NewDist3D(nx, ny, nz, q int) *Dist3D {
	if nx <= 0 || ny <= 0 || nz <= 0 || q <= 0 {
		panic(fmt.Sprintf("field: invalid dimensions %dx%dx%dx%d", nx, ny, nz, q))
	}
	return &Dist3D{NX: nx, NY: ny, NZ: nz, Q: q, Data: make([]float64, nx*ny*nz*q)}
}

// Idx returns the flat index of population i at (x, y, z).
func (f *Dist3D) Idx(x, y, z, i int) int { return (((x*f.NY)+y)*f.NZ+z)*f.Q + i }

// At returns population i at (x, y, z).
func (f *Dist3D) At(x, y, z, i int) float64 { return f.Data[(((x*f.NY)+y)*f.NZ+z)*f.Q+i] }

// Set stores population i at (x, y, z).
func (f *Dist3D) Set(x, y, z, i int, v float64) { f.Data[(((x*f.NY)+y)*f.NZ+z)*f.Q+i] = v }

// Cell returns the contiguous Q-slice of populations at (x, y, z).
func (f *Dist3D) Cell(x, y, z int) []float64 {
	base := (((x*f.NY)+y)*f.NZ + z) * f.Q
	return f.Data[base : base+f.Q]
}

// PlaneSize returns the number of values in one fixed-x plane (NY*NZ*Q).
func (f *Dist3D) PlaneSize() int { return f.NY * f.NZ * f.Q }

// Plane returns the contiguous slice backing the fixed-x plane at x.
func (f *Dist3D) Plane(x int) []float64 {
	p := f.PlaneSize()
	return f.Data[x*p : (x+1)*p]
}

// Clone returns a deep copy.
func (f *Dist3D) Clone() *Dist3D {
	c := NewDist3D(f.NX, f.NY, f.NZ, f.Q)
	copy(c.Data, f.Data)
	return c
}

// TotalMass returns the sum of all populations (the total mass when the
// molecular mass is 1).
func (f *Dist3D) TotalMass() float64 {
	var m float64
	for _, v := range f.Data {
		m += v
	}
	return m
}
