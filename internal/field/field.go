// Package field provides flat-array storage for three-dimensional scalar
// fields and distribution-function fields, plus x-plane (slab) views used
// by the slice domain decomposition.
//
// Layout: index (x, y, z) maps to ((x*NY)+y)*NZ + z, so a fixed-x plane is
// one contiguous block of NY*NZ values. Distribution fields append the
// velocity index as the fastest dimension. Contiguous x-planes make halo
// exchange and lattice-point migration simple copies.
//
// The storage types are generic over the solver's scalar precision
// (num.Float). The float64 instantiations keep their historical names
// (Scalar3D, Dist3D, Slab) via aliases, so the double-precision parallel
// layer is untouched; the float32 instantiations back the reduced-
// precision sequential core.
package field

import (
	"fmt"

	"microslip/internal/num"
)

// Scalar3DOf is a dense NX x NY x NZ field of T.
type Scalar3DOf[T num.Float] struct {
	NX, NY, NZ int
	Data       []T
}

// Scalar3D is the double-precision scalar field used by the parallel
// layer and all historical call sites.
type Scalar3D = Scalar3DOf[float64]

// NewScalar3DOf allocates a zeroed scalar field of T.
func NewScalar3DOf[T num.Float](nx, ny, nz int) *Scalar3DOf[T] {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("field: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	return &Scalar3DOf[T]{NX: nx, NY: ny, NZ: nz, Data: make([]T, nx*ny*nz)}
}

// NewScalar3D allocates a zeroed float64 scalar field.
func NewScalar3D(nx, ny, nz int) *Scalar3D { return NewScalar3DOf[float64](nx, ny, nz) }

// Idx returns the flat index of (x, y, z).
func (s *Scalar3DOf[T]) Idx(x, y, z int) int { return (x*s.NY+y)*s.NZ + z }

// At returns the value at (x, y, z).
func (s *Scalar3DOf[T]) At(x, y, z int) T { return s.Data[(x*s.NY+y)*s.NZ+z] }

// Set stores v at (x, y, z).
func (s *Scalar3DOf[T]) Set(x, y, z int, v T) { s.Data[(x*s.NY+y)*s.NZ+z] = v }

// PlaneSize returns the number of values in one fixed-x plane.
func (s *Scalar3DOf[T]) PlaneSize() int { return s.NY * s.NZ }

// Plane returns the contiguous slice backing the fixed-x plane at x.
func (s *Scalar3DOf[T]) Plane(x int) []T {
	p := s.PlaneSize()
	return s.Data[x*p : (x+1)*p]
}

// Fill sets every value to v.
func (s *Scalar3DOf[T]) Fill(v T) {
	for i := range s.Data {
		s.Data[i] = v
	}
}

// Clone returns a deep copy.
func (s *Scalar3DOf[T]) Clone() *Scalar3DOf[T] {
	c := NewScalar3DOf[T](s.NX, s.NY, s.NZ)
	copy(c.Data, s.Data)
	return c
}

// Dist3DOf is a dense NX x NY x NZ x Q distribution-function field of T.
// Within each fixed-x plane the Layout selects cell-major (AoS,
// canonical) or direction-major (SoA) ordering; planes themselves are
// always contiguous and ascending in x, so plane-granular operations
// (halo exchange, migration) are layout-agnostic.
type Dist3DOf[T num.Float] struct {
	NX, NY, NZ, Q int
	Layout        Layout
	Data          []T
}

// Dist3D is the double-precision distribution field used by the parallel
// layer and all historical call sites.
type Dist3D = Dist3DOf[float64]

// NewDist3DOf allocates a zeroed distribution field of T with Q velocities.
func NewDist3DOf[T num.Float](nx, ny, nz, q int) *Dist3DOf[T] {
	return NewDist3DLayoutOf[T](nx, ny, nz, q, AoS)
}

// NewDist3DLayoutOf allocates a zeroed distribution field of T with Q
// velocities in the given plane layout.
func NewDist3DLayoutOf[T num.Float](nx, ny, nz, q int, layout Layout) *Dist3DOf[T] {
	if nx <= 0 || ny <= 0 || nz <= 0 || q <= 0 {
		panic(fmt.Sprintf("field: invalid dimensions %dx%dx%dx%d", nx, ny, nz, q))
	}
	return &Dist3DOf[T]{NX: nx, NY: ny, NZ: nz, Q: q, Layout: layout, Data: make([]T, nx*ny*nz*q)}
}

// NewDist3D allocates a zeroed float64 distribution field.
func NewDist3D(nx, ny, nz, q int) *Dist3D { return NewDist3DOf[float64](nx, ny, nz, q) }

// Idx returns the flat index of population i at (x, y, z).
func (f *Dist3DOf[T]) Idx(x, y, z, i int) int {
	if f.Layout == SoA {
		return (x*f.Q+i)*f.NY*f.NZ + y*f.NZ + z
	}
	return (((x*f.NY)+y)*f.NZ+z)*f.Q + i
}

// At returns population i at (x, y, z).
func (f *Dist3DOf[T]) At(x, y, z, i int) T { return f.Data[f.Idx(x, y, z, i)] }

// Set stores population i at (x, y, z).
func (f *Dist3DOf[T]) Set(x, y, z, i int, v T) { f.Data[f.Idx(x, y, z, i)] = v }

// Cell returns the contiguous Q-slice of populations at (x, y, z).
// Only AoS planes hold a cell contiguously; on an SoA field Cell panics.
func (f *Dist3DOf[T]) Cell(x, y, z int) []T {
	if f.Layout != AoS {
		panic("field: Cell requires the AoS layout (SoA cells are not contiguous)")
	}
	base := (((x*f.NY)+y)*f.NZ + z) * f.Q
	return f.Data[base : base+f.Q]
}

// PlaneSize returns the number of values in one fixed-x plane (NY*NZ*Q).
func (f *Dist3DOf[T]) PlaneSize() int { return f.NY * f.NZ * f.Q }

// Plane returns the contiguous slice backing the fixed-x plane at x.
func (f *Dist3DOf[T]) Plane(x int) []T {
	p := f.PlaneSize()
	return f.Data[x*p : (x+1)*p]
}

// Clone returns a deep copy (same layout).
func (f *Dist3DOf[T]) Clone() *Dist3DOf[T] {
	c := NewDist3DLayoutOf[T](f.NX, f.NY, f.NZ, f.Q, f.Layout)
	copy(c.Data, f.Data)
	return c
}

// TotalMass returns the sum of all populations (the total mass when the
// molecular mass is 1). The accumulation is always double precision so
// the diagnostic does not lose mass to summation order at float32.
func (f *Dist3DOf[T]) TotalMass() float64 {
	var m float64
	for _, v := range f.Data {
		m += float64(v)
	}
	return m
}
