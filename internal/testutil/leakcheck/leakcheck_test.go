package leakcheck

import (
	"strings"
	"testing"
	"time"
)

type recorder struct {
	failures []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}

func TestCheckCatchesLeak(t *testing.T) {
	rec := &recorder{}
	done := Check(rec)
	stop := make(chan struct{})
	go func() { <-stop }() // parked: a genuine leak during the grace window
	start := time.Now()
	done()
	close(stop)
	if len(rec.failures) == 0 {
		t.Fatal("leaked goroutine not reported")
	}
	if time.Since(start) < 1900*time.Millisecond {
		t.Fatal("grace window not honored before failing")
	}
}

func TestCheckPassesOnTransientGoroutine(t *testing.T) {
	rec := &recorder{}
	done := Check(rec)
	go func() { time.Sleep(100 * time.Millisecond) }() // finishes inside the grace window
	done()
	if len(rec.failures) != 0 {
		t.Fatalf("transient goroutine flagged as leak: %v", rec.failures)
	}
}

func TestSnapshotFiltersHarness(t *testing.T) {
	for _, s := range Snapshot() {
		if strings.Contains(s, "testing.tRunner") {
			t.Fatalf("harness goroutine not filtered:\n%s", s)
		}
	}
}

func TestCountZeroWhenClean(t *testing.T) {
	if n := Count(Snapshot(), 200*time.Millisecond); n != 0 {
		t.Fatalf("clean baseline counts %d leaks", n)
	}
}
