// Package leakcheck asserts that a test (or a whole test binary) does
// not leak goroutines. It is deliberately tiny: snapshot the goroutine
// stacks, run the code under test, then diff against a fresh snapshot,
// retrying for a grace window so goroutines that are merely *finishing*
// (runtime-finalizer driven pool shutdown, prober tickers draining)
// are not reported.
//
// Wire it into a package with a TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// or scope it to one test:
//
//	defer leakcheck.Check(t)()
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of testing.TB leakcheck needs; keeping the package
// free of a "testing" import means non-test callers (the experiments
// harness) can use it too.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// ignored matches goroutines that are part of the runtime or the test
// harness itself, never a leak from the code under test.
var ignored = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.(*T).Run(",
	"runtime.goexit",
	"runtime.MHeap_Scavenger",
	"runtime.gc",
	"created by runtime",
	"signal.signal_recv",
	"signal.loop",
	"os/signal.NotifyContext",
	"runtime.ensureSigM",
	"leakcheck.interestingGoroutines",
}

// interestingGoroutines returns the normalized stack of every live
// goroutine that is not runtime/harness noise, sorted.
func interestingGoroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
next:
	for _, g := range strings.Split(string(buf), "\n\n") {
		stack := strings.TrimSpace(g)
		if stack == "" {
			continue
		}
		for _, skip := range ignored {
			if strings.Contains(stack, skip) {
				continue next
			}
		}
		// Drop the header's goroutine id and state so two snapshots of
		// the same parked goroutine compare equal.
		if i := strings.Index(stack, "\n"); i >= 0 {
			stack = stack[i+1:]
		}
		out = append(out, stack)
	}
	sort.Strings(out)
	return out
}

// Leaked returns the goroutine stacks still alive after the grace
// window that were not alive at baseline. Retries with GC each round so
// finalizer-driven shutdowns (the band-step worker pool) get to run.
func Leaked(baseline []string, grace time.Duration) []string {
	base := map[string]int{}
	for _, s := range baseline {
		base[s]++
	}
	deadline := time.Now().Add(grace)
	var extra []string
	for {
		extra = extra[:0]
		seen := map[string]int{}
		for _, s := range interestingGoroutines() {
			seen[s]++
			if seen[s] > base[s] {
				extra = append(extra, s)
			}
		}
		if len(extra) == 0 || time.Now().After(deadline) {
			return append([]string(nil), extra...)
		}
		runtime.GC() // release pool finalizers
		time.Sleep(20 * time.Millisecond)
	}
}

// Check snapshots the current goroutines and returns a function that
// fails tb if extra goroutines survive a 2s grace window. Use as
// `defer leakcheck.Check(t)()`.
func Check(tb TB) func() {
	base := interestingGoroutines()
	return func() {
		tb.Helper()
		for _, stack := range Leaked(base, 2*time.Second) {
			tb.Errorf("leaked goroutine:\n%s", stack)
		}
	}
}

// Count returns how many non-harness goroutines beyond the baseline are
// still alive after the grace window — the experiments harness's
// numeric form of Check.
func Count(baseline []string, grace time.Duration) int {
	return len(Leaked(baseline, grace))
}

// Snapshot records the current interesting goroutines for a later
// Leaked/Count diff.
func Snapshot() []string { return interestingGoroutines() }

// mainRunner is the subset of *testing.M that Main needs.
type mainRunner interface{ Run() int }

// Main wraps a package's TestMain: run the tests, then fail the binary
// if the whole run leaked goroutines past a 2s grace window.
func Main(m mainRunner) {
	base := interestingGoroutines()
	code := m.Run()
	if code == 0 {
		if leaked := Leaked(base, 2*time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by the test binary:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
