// Command loadgen drives a running slipd with many concurrent small
// jobs and reports throughput and latency quantiles. It is the
// measurement harness behind the service numbers in EXPERIMENTS.md and
// the burst generator of the serve-smoke drain test.
//
// Two modes:
//
//   - default: submit -jobs jobs from -concurrency workers, long-poll
//     each to its terminal state, and print a jobs/sec + p50/p95/p99
//     table. Exits nonzero if any job fails (or ends in a state other
//     than those allowed by -allow).
//
//   - -submit-only: submit the jobs and exit without waiting; used by
//     the drain test to leave in-flight work behind a SIGTERM.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -jobs 500 -concurrency 64
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microslip/internal/serve"
)

func main() {
	os.Exit(run())
}

type outcome struct {
	state   serve.State
	latency time.Duration
	err     error
}

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "slipd address")
		jobs        = flag.Int("jobs", 500, "total jobs to submit")
		concurrency = flag.Int("concurrency", 64, "concurrent client workers")
		kind        = flag.String("kind", serve.KindWallForce, "job kind: wallforce, steady, or distributed")
		nx          = flag.Int("nx", 4, "lattice NX")
		ny          = flag.Int("ny", 16, "lattice NY")
		nz          = flag.Int("nz", 4, "lattice NZ")
		steps       = flag.Int("steps", 50, "steps per job")
		tol         = flag.Float64("tol", 1e-6, "steady tolerance (steady jobs)")
		waitMS      = flag.Int("wait-ms", 120000, "per-job long-poll budget in ms")
		submitOnly  = flag.Bool("submit-only", false, "submit jobs and exit without waiting for them")
		allow       = flag.String("allow", "done", "comma-separated acceptable terminal states")
		out         = flag.String("out", "", "append the result table to this file")
	)
	flag.Parse()
	base := "http://" + strings.TrimPrefix(*addr, "http://")
	allowed := map[serve.State]bool{}
	for _, s := range strings.Split(*allow, ",") {
		allowed[serve.State(strings.TrimSpace(s))] = true
	}

	spec := serve.JobSpec{Kind: *kind, NX: *nx, NY: *ny, NZ: *nz, Steps: *steps}
	if *kind == serve.KindSteady {
		spec.SteadyTol = *tol
	}
	body, _ := json.Marshal(spec)

	client := &http.Client{Timeout: time.Duration(*waitMS)*time.Millisecond + 30*time.Second}
	var (
		submitFail atomic.Int64
		next       atomic.Int64
		mu         sync.Mutex
		outcomes   []outcome
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if next.Add(1) > int64(*jobs) {
					return
				}
				oc := runOne(client, base, body, *waitMS, *submitOnly)
				if oc.err != nil && oc.state == "" {
					submitFail.Add(1)
				}
				mu.Lock()
				outcomes = append(outcomes, oc)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if *submitOnly {
		fails := submitFail.Load()
		fmt.Printf("submitted %d jobs in %v (%d failed)\n", *jobs, wall.Round(time.Millisecond), fails)
		if fails > 0 {
			return 1
		}
		return 0
	}

	var lat []time.Duration
	bad := 0
	states := map[serve.State]int{}
	for _, oc := range outcomes {
		states[oc.state]++
		if oc.err != nil || !allowed[oc.state] {
			bad++
			if oc.err != nil && bad <= 5 {
				log.Printf("loadgen: %v", oc.err)
			}
			continue
		}
		lat = append(lat, oc.latency)
	}

	table := renderTable(*jobs, *concurrency, spec, wall, lat, states)
	fmt.Print(table)
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Printf("loadgen: %v", err)
			return 1
		}
		f.WriteString(table)
		f.Close()
	}
	if bad > 0 {
		log.Printf("loadgen: %d/%d jobs unacceptable (allowed: %s)", bad, *jobs, *allow)
		return 1
	}
	return 0
}

// runOne submits one job and (unless submitOnly) long-polls it to a
// terminal state, returning the submit→terminal latency.
func runOne(client *http.Client, base string, body []byte, waitMS int, submitOnly bool) outcome {
	t0 := time.Now()
	st, err := postJSON(client, base+"/jobs", body)
	if err != nil {
		return outcome{err: fmt.Errorf("submit: %w", err)}
	}
	if submitOnly {
		return outcome{state: st.State, latency: time.Since(t0)}
	}
	deadline := time.Now().Add(time.Duration(waitMS) * time.Millisecond)
	for {
		st, err = getJSON(client, fmt.Sprintf("%s/jobs/%s/wait?timeout_ms=%d", base, st.ID, waitMS))
		if err != nil {
			return outcome{state: st.State, err: fmt.Errorf("wait %s: %w", st.ID, err)}
		}
		if st.State.Terminal() {
			if st.State == serve.StateFailed {
				return outcome{state: st.State, err: fmt.Errorf("job %s failed: %s", st.ID, st.Error)}
			}
			return outcome{state: st.State, latency: time.Since(t0)}
		}
		if time.Now().After(deadline) {
			return outcome{state: st.State, err: fmt.Errorf("job %s still %s after %dms", st.ID, st.State, waitMS)}
		}
	}
}

func postJSON(client *http.Client, url string, body []byte) (serve.JobStatus, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, err
	}
	return decodeStatus(resp)
}

func getJSON(client *http.Client, url string) (serve.JobStatus, error) {
	resp, err := client.Get(url)
	if err != nil {
		return serve.JobStatus{}, err
	}
	return decodeStatus(resp)
}

func decodeStatus(resp *http.Response) (serve.JobStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return serve.JobStatus{}, fmt.Errorf("http %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serve.JobStatus{}, err
	}
	return st, nil
}

// renderTable formats the throughput + quantile summary.
func renderTable(jobs, conc int, spec serve.JobSpec, wall time.Duration, lat []time.Duration, states map[serve.State]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d jobs (%s %dx%dx%d, %d steps) x %d clients\n",
		jobs, spec.Kind, spec.NX, spec.NY, spec.NZ, spec.Steps, conc)
	var parts []string
	for _, s := range []serve.State{serve.StateDone, serve.StateInterrupted, serve.StateCanceled, serve.StateFailed, serve.StateQueued, serve.StateRunning} {
		if n := states[s]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", s, n))
		}
	}
	fmt.Fprintf(&b, "states: %s\n", strings.Join(parts, " "))
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| wall time | %v |\n", wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "| jobs/sec | %.1f |\n", float64(len(lat))/wall.Seconds())
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(lat)-1))
			return lat[i].Round(time.Millisecond)
		}
		fmt.Fprintf(&b, "| p50 latency | %v |\n", q(0.50))
		fmt.Fprintf(&b, "| p95 latency | %v |\n", q(0.95))
		fmt.Fprintf(&b, "| p99 latency | %v |\n", q(0.99))
		fmt.Fprintf(&b, "| max latency | %v |\n", lat[len(lat)-1].Round(time.Millisecond))
	}
	return b.String()
}
