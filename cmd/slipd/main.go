// Command slipd is the slip-simulation job server: an HTTP/JSON
// control plane (package serve) over the supervised LBM solver stack.
// Clients submit wall-force, steady-state, and distributed water/air
// jobs; slipd validates them, queues them, schedules them across a
// bounded worker pool, streams live progress frames, and checkpoints
// interrupted jobs so they can be resumed.
//
// SIGINT/SIGTERM triggers a graceful drain: submissions are refused,
// running jobs are interrupted at their next safe boundary with their
// state checkpointed, and the process exits 0 once the pool is idle.
//
// Usage:
//
//	slipd -addr :8080 -data /var/lib/slipd -pool 4
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"microslip/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts that use -addr :0)")
		data      = flag.String("data", "", "storage root for job records and checkpoints (empty = in-memory, no resume)")
		pool      = flag.Int("pool", 2, "concurrent jobs (worker pool size)")
		queue     = flag.Int("queue", 1024, "bounded queue depth for accepted-but-not-running jobs")
		stream    = flag.Int("stream-every", 200, "steps between streamed progress frames")
		drainWait = flag.Duration("drain-timeout", 2*time.Minute, "max time to wait for in-flight jobs to reach a safe stop on shutdown")
	)
	flag.Parse()

	cfg := serve.Config{Pool: *pool, QueueDepth: *queue, StreamEvery: *stream}
	if *data != "" {
		st, err := serve.NewDirStorage(*data)
		if err != nil {
			log.Printf("slipd: %v", err)
			return 1
		}
		cfg.Storage = st
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		log.Printf("slipd: %v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("slipd: %v", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Printf("slipd: %v", err)
			return 1
		}
	}
	log.Printf("slipd: listening on %s (pool=%d queue=%d data=%q)", ln.Addr(), *pool, *queue, *data)

	hs := &http.Server{Handler: serve.Handler(srv)}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("slipd: %v: draining (in-flight jobs stop at their next safe boundary)", sig)
	case err := <-httpDone:
		log.Printf("slipd: http server: %v", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Drain the job pool first so running jobs checkpoint, then close
	// the HTTP side (clients polling /jobs/{id} during the drain still
	// get answers).
	drainErr := srv.Shutdown(ctx)
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	if drainErr != nil {
		log.Printf("slipd: %v", drainErr)
		return 1
	}
	log.Printf("slipd: drained cleanly")
	return 0
}
