// Command lbmbench is the performance-trajectory harness: it runs
// pinned-size step sweeps over the intra-node solver (reference and
// fused collide+stream, several worker counts) and the distributed
// solver (several rank counts, comm/compute overlap on and off) and
// emits a BENCH_<date>.json report with MLUPS, ns/step, and allocs/step
// per configuration.
//
// Usage:
//
//	lbmbench [-grid 32x48x16[,NXxNYxNZ...]] [-steps N] [-warmup N]
//	         [-workers 1,2,4] [-ranks 1,2,4] [-fused both|on|off]
//	         [-overlap both|on|off] [-halo both|slim|wide]
//	         [-coalesce both|on|off] [-layout aos|soa|both]
//	         [-refine both|on|off] [-wall-layers N]
//	         [-precision f64[,f32]]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	         [-blockprofile FILE] [-mutexprofile FILE]
//	         [-out FILE] [-quick]
//	lbmbench -check FILE
//
// -quick shrinks the sweep to a few seconds for CI smoke runs. -check
// validates the JSON schema of an existing report and exits non-zero on
// any violation; CI uses it to gate the emitted artifact. A sweep cut
// short by SIGINT/SIGTERM still flushes its partial report (marked
// "interrupted") but exits 3, so automation never mistakes a partial
// trajectory point for a complete one; -check likewise rejects
// interrupted reports unless -allow-interrupted is passed.
//
// -precision sweeps the scalar precision: f64 is the historical core;
// f32 runs the intra-node solver in single precision and switches the
// distributed solver to packed float32 wire payloads (computing in
// double). The validator cross-checks that f32 distributed entries ship
// about half the distribution-halo bytes of their f64 twins.
//
// -layout sweeps the intra-node distribution memory layout: aos is the
// canonical cell-major storage, soa the direction-major (plane
// structure-of-arrays) storage of the same bits. Both evaluate the
// identical expression tree per cell, so the sweep compares pure memory
// behavior.
//
// -refine adds intra-node rows on the two-level near-wall refined
// solver (-wall-layers fine rows per wall slab, default 12, 4 with
// -quick). Refined entries report MLUPS over actual site updates and
// effective_mlups over the uniform-equivalent updates; effective
// divided by the uniform twin's MLUPS is the refinement's end-to-end
// speedup, which the validator gates at paper size.
//
// -cpuprofile and -memprofile write pprof profiles covering the whole
// sweep, for digging into regressions the report surfaces; -blockprofile
// and -mutexprofile add the scheduler-side views (where the band workers
// wait, and on what they contend).
//
// Distributed entries carry a comm_bytes block with the per-class wire
// volumes (density halo, distribution halo, coalesced frames,
// migration, control, gather) measured by the solver's own byte
// counters and summed over all ranks, plus the derived halo bytes per
// phase — the number the slim format cuts by more than 3x.
//
// MLUPS is million lattice-site updates per second: NX*NY*NZ*steps /
// elapsed / 1e6 (solid cells counted — the kernel visits them too).
// allocs/step and bytes/step are measured with runtime.ReadMemStats
// around the timed loop; for the distributed entries they include the
// per-run rank setup amortised over the steps, so only the intra-node
// entries are expected to reach exactly zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"microslip/internal/lbm"
	"microslip/internal/parlbm"
	"microslip/internal/profile"
)

// Schema identifies the report layout; bump on incompatible change.
// v2 adds the halo wire format, frame coalescing, and measured per-class
// communication volumes (comm_bytes) to the distributed entries. v3
// makes every entry carry its scalar precision ("f64"/"f32") and the
// environment block record GOMAXPROCS next to the CPU count. v4 makes
// every intra-node entry carry scaling_efficiency — MLUPS(w) divided by
// MLUPS(1) times the usable parallelism min(w, GOMAXPROCS) — and the
// validator gate entries on paper-size grids at 0.7. v5 makes every
// intra-node entry carry its distribution memory layout ("aos"/"soa");
// distributed entries stay layout-free (their wire format and gathered
// artifacts are canonical order by construction, so layout is not an
// observable of a distributed measurement). v6 makes every intra-node
// entry carry a refine field — "none" for the uniform solver, "wl<N>"
// for the two-level near-wall refined solver with N fine rows per wall
// slab — and refined entries additionally carry effective_mlups: the
// uniform-equivalent site-update rate (fine-equivalent sites per
// composite step over wall time), the number a refined run's speedup
// over its uniform twin is read from. The validator recomputes the
// effective/actual ratio from the descriptor and gates paper-size
// fused-AoS refined entries on beating their uniform twin.
const Schema = "microslip-bench/v6"

// paperCells is the cell count of the smaller paper-size preset grid
// (200x100x20); the scaling-efficiency gate applies from there up,
// where per-band work dwarfs the boundary synchronization and
// sub-linear scaling means a real scheduler regression rather than a
// small-grid redundancy tax.
const paperCells = 200 * 100 * 20

// minScalingEfficiency is the validator gate: intra-node entries on
// grids of at least paperCells must keep MLUPS(w) at or above 0.7 of
// the ideal min(w, GOMAXPROCS) speedup over the same sweep's w=1
// baseline. Normalizing by GOMAXPROCS rather than raw w keeps the gate
// meaningful on cgroup-limited CI boxes: requesting more workers than
// the box can schedule must cost nothing (the scheduler's chunk floor
// and CPU cap guarantee it), while on real multi-core hardware the
// gate enforces near-linear intra-node scaling.
const minScalingEfficiency = 0.7

// TagJSON is one message class's wire traffic, summed over all ranks.
type TagJSON struct {
	SentBytes int64 `json:"sent_bytes"`
	RecvBytes int64 `json:"recv_bytes"`
	SentMsgs  int64 `json:"sent_msgs"`
	RecvMsgs  int64 `json:"recv_msgs"`
}

// CommJSON is the per-class communication volume of one distributed
// run, from the solver's own Result.Comm counters.
type CommJSON struct {
	DensityHalo TagJSON `json:"density_halo"`
	DistHalo    TagJSON `json:"dist_halo"`
	Frame       TagJSON `json:"frame"`
	Migration   TagJSON `json:"migration"`
	Control     TagJSON `json:"control"`
	Gather      TagJSON `json:"gather"`
	// HaloBytesPerPhase is the derived per-phase halo traffic across
	// the whole ring (density + distribution + frames), for eyeballing
	// format comparisons without arithmetic.
	HaloBytesPerPhase float64 `json:"halo_bytes_per_phase"`
}

func tagJSON(t profile.TagBytes) TagJSON {
	return TagJSON{SentBytes: t.SentBytes, RecvBytes: t.RecvBytes, SentMsgs: t.SentMsgs, RecvMsgs: t.RecvMsgs}
}

// Entry is one measured configuration.
type Entry struct {
	Name          string    `json:"name"`
	Grid          [3]int    `json:"grid"`
	Workers       int       `json:"workers"` // intra-node goroutines; 0 for distributed entries
	Ranks         int       `json:"ranks"`   // distributed ranks; 0 for intra-node entries
	Fused         bool      `json:"fused"`
	Overlap       bool      `json:"overlap"`
	Halo          string    `json:"halo,omitempty"`     // distributed: "slim" or "wide"
	Coalesce      bool      `json:"coalesce,omitempty"` // distributed: one frame per neighbor per phase
	Layout        string    `json:"layout,omitempty"`   // intra-node: "aos" or "soa"
	Precision     string    `json:"precision"`          // "f64" or "f32" (distributed f32 = f32 wire)
	Steps         int       `json:"steps"`
	NsPerStep     float64   `json:"ns_per_step"`
	MLUPS         float64   `json:"mlups"`
	AllocsPerStep float64   `json:"allocs_per_step"`
	BytesPerStep  float64   `json:"bytes_per_step"`
	CommBytes     *CommJSON `json:"comm_bytes,omitempty"` // distributed only
	// ScalingEff is MLUPS / (MLUPS of the same sweep's workers=1 twin
	// times min(workers, GOMAXPROCS)); intra-node entries only.
	ScalingEff float64 `json:"scaling_efficiency,omitempty"`
	// Refine marks the grid hierarchy of an intra-node entry: "none"
	// for the uniform solver, "wl<N>" for the two-level near-wall
	// refined solver with N fine rows per wall slab. Refined entries'
	// MLUPS counts actual site updates (fine sub-steps + coarse step
	// per composite step); distributed entries omit the field.
	Refine string `json:"refine,omitempty"`
	// EffectiveMLUPS is a refined entry's uniform-equivalent rate:
	// the site updates the uniform fine solver would need for the same
	// physical time (every global fine site, twice per composite step)
	// over wall time. EffectiveMLUPS / the uniform twin's MLUPS is the
	// refinement's end-to-end speedup.
	EffectiveMLUPS float64 `json:"effective_mlups,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS is what the runtime will actually schedule on — on
	// cgroup-limited CI boxes it can sit far below CPUs, and the
	// worker-scaling numbers only make sense against it.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Interrupted marks a report flushed early by SIGINT/SIGTERM: the
	// entries measured before the signal are valid, the sweep is not
	// complete.
	Interrupted bool    `json:"interrupted,omitempty"`
	Entries     []Entry `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmbench: ")
	os.Exit(run())
}

// run is main's body behind an exit code, so the pprof and signal
// defers execute before the process exits. Exit codes: 0 complete,
// 1 usage/validation error (via log.Fatal), 3 sweep interrupted by
// SIGINT/SIGTERM (partial report written).
func run() int {
	// SIGINT/SIGTERM end the sweep at the next entry boundary and flush
	// the partial report (marked "interrupted") instead of dying with
	// nothing written.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	var (
		grids     = flag.String("grid", "32x48x16", "comma-separated NXxNYxNZ grids")
		steps     = flag.Int("steps", 120, "timed steps per configuration")
		warmup    = flag.Int("warmup", 20, "untimed warmup steps (intra-node sweeps)")
		workers   = flag.String("workers", "1,2,4", "comma-separated intra-node worker counts")
		ranks     = flag.String("ranks", "1,2,4", "comma-separated distributed rank counts")
		fused     = flag.String("fused", "both", "fused collide+stream: both, on, or off")
		overlap   = flag.String("overlap", "both", "comm/compute overlap: both, on, or off")
		halo      = flag.String("halo", "both", "halo wire format: both, slim, or wide")
		coalesce  = flag.String("coalesce", "off", "coalesced phase frames: both, on, or off")
		layout    = flag.String("layout", "aos", "intra-node distribution layout: aos, soa, or both")
		refine    = flag.String("refine", "off", "two-level near-wall refinement: both, on, or off")
		wallLay   = flag.Int("wall-layers", 0, "fine rows per wall slab for refined entries (0 = 12, or 4 with -quick)")
		precision = flag.String("precision", "f64", "comma-separated scalar precisions: f64, f32")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to FILE")
		memprof   = flag.String("memprofile", "", "write a heap profile after the sweep to FILE")
		blockprof = flag.String("blockprofile", "", "write a goroutine-blocking profile of the sweep to FILE")
		mutexprof = flag.String("mutexprofile", "", "write a mutex-contention profile of the sweep to FILE")
		out       = flag.String("out", "", "output file (default BENCH_<date>.json)")
		quick     = flag.Bool("quick", false, "tiny sweep for CI smoke runs")
		paper     = flag.Bool("paper", false, "paper-size preset: 32x48x16 + 200x100x20 + 400x200x20 grids, worker sweep to 8")
		check     = flag.String("check", "", "validate the schema of an existing report and exit")
		allowIntr = flag.Bool("allow-interrupted", false, "-check: accept reports marked interrupted (partial sweeps)")
	)
	flag.Parse()

	if *check != "" {
		if err := validate(*check, *allowIntr); err != nil {
			log.Printf("%s: %v", *check, err)
			return 1
		}
		fmt.Printf("ok: %s is valid %s\n", *check, Schema)
		return 0
	}

	precSet, layoutSet, refineSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "precision":
			precSet = true
		case "layout":
			layoutSet = true
		case "refine":
			refineSet = true
		}
	})
	if *quick {
		// 8x18x8: the smallest channel that can host a refined row
		// (4 wall layers need NY >= 18); through schema v5 the smoke
		// grid was 8x16x8.
		*grids, *steps, *warmup = "8x18x8", 40, 8
		*workers, *ranks = "1,2", "2"
		*halo, *coalesce = "both", "both"
		if !precSet { // an explicit -precision narrows the CI matrix leg
			*precision = "f64,f32"
		}
		if !layoutSet {
			*layout = "both"
		}
		if !refineSet { // uniform + refined rows by default, like layout
			*refine = "both"
		}
	}
	if *paper {
		// The paper-size preset: the historical trajectory grid plus
		// the two production resolutions from the source paper, with
		// the worker sweep the scaling gate needs. Step counts scale
		// down with cell count (see stepsFor) so the big grids stay
		// minutes, not hours; distributed entries keep to the small
		// grid, where the rank sweep remains the trajectory's
		// comparable point.
		*grids = "32x48x16,200x100x20,400x200x20"
		*workers = "1,2,4,8"
		*halo, *coalesce, *overlap = "slim", "off", "off"
		if !layoutSet { // the AoS-vs-SoA comparison is a paper-preset deliverable
			*layout = "both"
		}
		if !refineSet { // refined-vs-uniform at paper size is the other one
			*refine = "both"
		}
	}
	gridList, err := parseGrids(*grids)
	if err != nil {
		log.Fatal(err)
	}
	workerList, err := parseInts(*workers)
	if err != nil {
		log.Fatalf("-workers: %v", err)
	}
	// The scaling-efficiency field needs every intra entry's workers=1
	// twin measured first, so the sweep always starts at 1 and runs in
	// ascending order.
	workerList = normalizeWorkers(workerList)
	rankList, err := parseInts(*ranks)
	if err != nil {
		log.Fatalf("-ranks: %v", err)
	}
	fusedModes, err := parseToggle(*fused)
	if err != nil {
		log.Fatalf("-fused: %v", err)
	}
	overlapModes, err := parseToggle(*overlap)
	if err != nil {
		log.Fatalf("-overlap: %v", err)
	}
	haloModes, err := parseHalo(*halo)
	if err != nil {
		log.Fatalf("-halo: %v", err)
	}
	coalesceModes, err := parseToggle(*coalesce)
	if err != nil {
		log.Fatalf("-coalesce: %v", err)
	}
	precisions, err := parsePrecisions(*precision)
	if err != nil {
		log.Fatalf("-precision: %v", err)
	}
	layouts, err := parseLayouts(*layout)
	if err != nil {
		log.Fatalf("-layout: %v", err)
	}
	refineOn, err := parseToggle(*refine)
	if err != nil {
		log.Fatalf("-refine: %v", err)
	}
	// Refined rows are keyed by wall-layer count; 0 stays uniform. The
	// default descriptor is the paper preset's 12 fine rows per slab,
	// shrunk to 4 on the quick grid (whose channel cannot hold 12).
	if *wallLay == 0 {
		*wallLay = 12
		if *quick {
			*wallLay = 4
		}
	}
	var refineModes []int
	for _, on := range refineOn {
		if on {
			refineModes = append(refineModes, *wallLay)
		} else {
			refineModes = append(refineModes, 0)
		}
	}

	if *blockprof != "" {
		runtime.SetBlockProfileRate(1)
		defer writeLookupProfile("block", *blockprof)
	}
	if *mutexprof != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeLookupProfile("mutex", *mutexprof)
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := &Report{
		Schema:     Schema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	interrupted := false
sweep:
	for _, g := range gridList {
		gSteps, gWarmup := *steps, *warmup
		if *paper {
			gSteps, gWarmup = stepsFor(g, *steps), stepsFor(g, *warmup)
		}
		for _, prec := range precisions {
			for _, f := range fusedModes {
				for _, lay := range layouts {
					for _, wl := range refineModes {
						if wl > 0 {
							spec := lbm.RefineSpec{Levels: 2, WallLayers: wl}
							if err := spec.Validate(lbm.WaterAir(g[0], g[1], g[2])); err != nil {
								log.Printf("skipping refined rows on %dx%dx%d: %v", g[0], g[1], g[2], err)
								continue
							}
						}
						base := 0.0 // MLUPS of this (grid, prec, fused, layout, refine) at workers=1
						for _, w := range workerList {
							if ctx.Err() != nil {
								interrupted = true
								break sweep
							}
							e, err := benchIntra(g, w, f, lay, prec, gSteps, gWarmup, wl)
							if err != nil {
								log.Fatal(err)
							}
							if w == 1 {
								base = e.MLUPS
							}
							e.ScalingEff = scalingEfficiency(e.MLUPS, base, w, rep.GOMAXPROCS)
							rep.Entries = append(rep.Entries, e)
							fmt.Println(row(e))
						}
					}
				}
			}
			if *paper && cellsOf(g) >= paperCells {
				log.Printf("paper preset: skipping distributed sweep on %dx%dx%d (intra-focused at paper size)", g[0], g[1], g[2])
				continue
			}
			for _, r := range rankList {
				for _, ov := range overlapModes {
					if ov && r == 1 {
						continue // overlap is a no-op on one rank
					}
					for _, wide := range haloModes {
						for _, cz := range coalesceModes {
							if cz && ov {
								continue // the coalesced phase has its own schedule; overlap is ignored
							}
							if ctx.Err() != nil {
								interrupted = true
								break sweep
							}
							e, err := benchRanks(g, r, ov, wide, cz, prec, gSteps)
							if err != nil {
								log.Fatal(err)
							}
							rep.Entries = append(rep.Entries, e)
							fmt.Println(row(e))
						}
					}
				}
			}
		}
	}

	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			log.Fatalf("-memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("-memprofile: %v", err)
		}
		f.Close()
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	rep.Interrupted = interrupted
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if interrupted {
		fmt.Printf("interrupted: wrote partial %s (%d entries, marked interrupted)\n", path, len(rep.Entries))
		return 3
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(rep.Entries))
	return 0
}

// benchIntra measures StepParallel on one
// grid/worker/fused/layout/precision configuration of the sequential
// solver; wallLayers > 0 selects the two-level near-wall refined
// solver with that many fine rows per wall slab, whose steps are
// composite (two fine time units) and whose MLUPS counts actual site
// updates with effective_mlups carrying the uniform-equivalent rate.
func benchIntra(g [3]int, workers int, fused bool, layout lbm.Layout, prec lbm.Precision, steps, warmup, wallLayers int) (Entry, error) {
	p := lbm.WaterAir(g[0], g[1], g[2])
	p.Fused = fused
	p.Layout = layout
	p.Precision = prec
	var (
		s   interface{ StepParallel() }
		ref lbm.RefinedSolver
		err error
	)
	if wallLayers > 0 {
		ref, err = lbm.NewRefined(p, lbm.RefineSpec{Levels: 2, WallLayers: wallLayers})
		if err == nil {
			ref.SetWorkers(workers)
			s = ref
		}
	} else {
		var u lbm.Solver
		u, err = lbm.NewSolver(p)
		if err == nil {
			u.SetWorkers(workers)
			s = u
		}
	}
	if err != nil {
		return Entry{}, err
	}
	for i := 0; i < warmup; i++ {
		s.StepParallel()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < steps; i++ {
		s.StepParallel()
	}
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	refName := "none"
	if wallLayers > 0 {
		refName = fmt.Sprintf("wl%d", wallLayers)
	}
	e := Entry{
		Name: fmt.Sprintf("intra/%dx%dx%d/fused=%v/layout=%s/refine=%s/workers=%d/prec=%s",
			g[0], g[1], g[2], fused, layout, refName, workers, prec),
		Grid:      g,
		Workers:   workers,
		Fused:     fused,
		Layout:    layout.String(),
		Precision: prec.String(),
		Refine:    refName,
		Steps:     steps,
	}
	fill(&e, el, steps, &m0, &m1)
	if ref != nil {
		refined, fineEq := ref.SiteUpdatesPerStep()
		e.MLUPS = refined * float64(steps) / el.Seconds() / 1e6
		e.EffectiveMLUPS = fineEq * float64(steps) / el.Seconds() / 1e6
	}
	return e, nil
}

// benchRanks measures one full distributed run; setup (rank spawn,
// initial decomposition) is included and amortised over the steps. The
// per-class communication volumes come from the solver's own
// Result.Comm counters, summed over all ranks.
func benchRanks(g [3]int, ranks int, overlap, wide, coalesce bool, prec lbm.Precision, steps int) (Entry, error) {
	p := lbm.WaterAir(g[0], g[1], g[2])
	p.Precision = prec // F32 implies packed float32 wire payloads
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	_, results, err := parlbm.RunParallel(p, ranks, parlbm.Options{
		Phases: steps, Overlap: overlap, WideHalo: wide, Coalesce: coalesce,
	})
	el := time.Since(t0)
	if err != nil {
		return Entry{}, err
	}
	runtime.ReadMemStats(&m1)
	var total profile.CommBytes
	for _, r := range results {
		total.Add(r.Comm.Bytes)
	}
	haloName := "slim"
	if wide {
		haloName = "wide"
	}
	e := Entry{
		Name: fmt.Sprintf("parlbm/%dx%dx%d/ranks=%d/overlap=%v/halo=%s/coalesce=%v/prec=%s",
			g[0], g[1], g[2], ranks, overlap, haloName, coalesce, prec),
		Grid:      g,
		Ranks:     ranks,
		Overlap:   overlap,
		Halo:      haloName,
		Coalesce:  coalesce,
		Precision: prec.String(),
		Steps:     steps,
		CommBytes: &CommJSON{
			DensityHalo:       tagJSON(total.DensityHalo),
			DistHalo:          tagJSON(total.DistHalo),
			Frame:             tagJSON(total.Frame),
			Migration:         tagJSON(total.Migration),
			Control:           tagJSON(total.Control),
			Gather:            tagJSON(total.Gather),
			HaloBytesPerPhase: float64(total.Halo().SentBytes) / float64(steps),
		},
	}
	fill(&e, el, steps, &m0, &m1)
	return e, nil
}

// normalizeWorkers sorts the worker sweep ascending, dedupes it, and
// guarantees the workers=1 baseline every scaling_efficiency value is
// computed against.
func normalizeWorkers(ws []int) []int {
	seen := map[int]bool{1: true}
	out := []int{1}
	for _, w := range ws {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// cellsOf returns the lattice cell count of a grid.
func cellsOf(g [3]int) int { return g[0] * g[1] * g[2] }

// stepsFor scales a step budget set at the 32x48x16 trajectory grid
// down with cell count, floor 12, so the paper-size sweeps cost
// seconds per configuration instead of minutes while small grids keep
// their full averaging window.
func stepsFor(g [3]int, base int) int {
	const baseCells = 32 * 48 * 16
	n := base * baseCells / cellsOf(g)
	if n > base {
		n = base
	}
	if n < 12 {
		n = 12
	}
	return n
}

// scalingEfficiency is MLUPS(w) over the ideal speedup from the w=1
// baseline, with the ideal capped at the schedulable parallelism
// min(w, GOMAXPROCS).
func scalingEfficiency(mlups, base float64, workers, gomaxprocs int) float64 {
	ideal := workers
	if gomaxprocs < ideal {
		ideal = gomaxprocs
	}
	if ideal < 1 || base <= 0 {
		return 0
	}
	return mlups / (base * float64(ideal))
}

func fill(e *Entry, el time.Duration, steps int, m0, m1 *runtime.MemStats) {
	cells := float64(e.Grid[0]) * float64(e.Grid[1]) * float64(e.Grid[2])
	e.NsPerStep = float64(el.Nanoseconds()) / float64(steps)
	e.MLUPS = cells * float64(steps) / el.Seconds() / 1e6
	e.AllocsPerStep = float64(m1.Mallocs-m0.Mallocs) / float64(steps)
	e.BytesPerStep = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(steps)
}

func row(e Entry) string {
	s := fmt.Sprintf("%-60s %10.0f ns/step %8.2f MLUPS %10.1f allocs/step",
		e.Name, e.NsPerStep, e.MLUPS, e.AllocsPerStep)
	if e.CommBytes != nil {
		s += fmt.Sprintf(" %10.0f halo B/phase", e.CommBytes.HaloBytesPerPhase)
	}
	if e.Workers >= 1 {
		s += fmt.Sprintf(" %5.2f eff", e.ScalingEff)
	}
	if e.EffectiveMLUPS > 0 {
		s += fmt.Sprintf(" %8.2f eff-MLUPS", e.EffectiveMLUPS)
	}
	return s
}

// validate checks an existing report against the schema; it is the CI
// gate for the emitted artifact. Interrupted (partial) reports are
// rejected unless allowInterrupted: their entries are individually
// valid but the sweep is incomplete, and a gate that accepted them
// silently would let a half-measured trajectory point into the record.
func validate(path string, allowInterrupted bool) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	dec := json.NewDecoder(strings.NewReader(string(buf)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return err
	}
	if rep.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", rep.Schema, Schema)
	}
	if rep.Interrupted && !allowInterrupted {
		return fmt.Errorf("report is marked interrupted (partial sweep); pass -allow-interrupted to accept it")
	}
	if _, err := time.Parse(time.RFC3339, rep.Generated); err != nil {
		return fmt.Errorf("generated: %v", err)
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" || rep.CPUs < 1 {
		return fmt.Errorf("incomplete environment block")
	}
	if rep.GOMAXPROCS < 1 {
		return fmt.Errorf("gomaxprocs %d", rep.GOMAXPROCS)
	}
	if len(rep.Entries) == 0 {
		return fmt.Errorf("no entries")
	}
	// Distribution-halo sent bytes per distributed configuration, keyed
	// by the name minus its precision suffix, for the f32-vs-f64
	// compression cross-check below.
	haloSent := map[string]map[string]int64{}
	// workers=1 MLUPS per intra configuration, for recomputing and
	// gating scaling_efficiency. Key: grid/fused/layout/refine/precision.
	intraBase := map[string]float64{}
	intraKey := func(e Entry) string {
		return fmt.Sprintf("%dx%dx%d/fused=%v/layout=%s/refine=%s/prec=%s",
			e.Grid[0], e.Grid[1], e.Grid[2], e.Fused, e.Layout, e.Refine, e.Precision)
	}
	// Uniform-twin MLUPS per refined configuration (same grid, fused,
	// layout, workers, precision), for the paper-size effective-speedup
	// gate below.
	uniformTwin := map[string]float64{}
	twinKey := func(e Entry) string {
		return fmt.Sprintf("%dx%dx%d/fused=%v/layout=%s/workers=%d/prec=%s",
			e.Grid[0], e.Grid[1], e.Grid[2], e.Fused, e.Layout, e.Workers, e.Precision)
	}
	for _, e := range rep.Entries {
		if e.Workers == 1 {
			intraBase[intraKey(e)] = e.MLUPS
		}
		if e.Workers >= 1 && e.Refine == "none" {
			uniformTwin[twinKey(e)] = e.MLUPS
		}
	}
	for i, e := range rep.Entries {
		if e.Name == "" {
			return fmt.Errorf("entry %d: empty name", i)
		}
		if e.Precision != "f64" && e.Precision != "f32" {
			return fmt.Errorf("entry %q: precision %q, want f64 or f32", e.Name, e.Precision)
		}
		if e.Grid[0] < 1 || e.Grid[1] < 1 || e.Grid[2] < 1 {
			return fmt.Errorf("entry %q: bad grid %v", e.Name, e.Grid)
		}
		if (e.Workers < 1) == (e.Ranks < 1) {
			return fmt.Errorf("entry %q: exactly one of workers/ranks must be set", e.Name)
		}
		if e.Steps < 1 {
			return fmt.Errorf("entry %q: steps %d", e.Name, e.Steps)
		}
		if e.NsPerStep <= 0 || e.MLUPS <= 0 {
			return fmt.Errorf("entry %q: non-positive timing (%v ns/step, %v MLUPS)",
				e.Name, e.NsPerStep, e.MLUPS)
		}
		if e.AllocsPerStep < 0 || e.BytesPerStep < 0 {
			return fmt.Errorf("entry %q: negative allocation counts", e.Name)
		}
		if e.Ranks >= 1 {
			if e.ScalingEff != 0 {
				return fmt.Errorf("entry %q: distributed entry carries scaling_efficiency", e.Name)
			}
			if e.Layout != "" {
				return fmt.Errorf("entry %q: distributed entry carries layout %q (wire and gather are canonical order; layout is not observable)", e.Name, e.Layout)
			}
			if e.Refine != "" || e.EffectiveMLUPS != 0 {
				return fmt.Errorf("entry %q: distributed entry carries refinement fields (refinement is intra-node only)", e.Name)
			}
			if e.Halo != "slim" && e.Halo != "wide" {
				return fmt.Errorf("entry %q: halo %q, want slim or wide", e.Name, e.Halo)
			}
			if e.CommBytes == nil {
				return fmt.Errorf("entry %q: distributed entry missing comm_bytes", e.Name)
			}
			halo := e.CommBytes.DensityHalo
			addTag(&halo, e.CommBytes.DistHalo)
			addTag(&halo, e.CommBytes.Frame)
			if e.Ranks > 1 {
				if halo.SentBytes <= 0 || halo.SentMsgs <= 0 {
					return fmt.Errorf("entry %q: no halo traffic recorded over %d ranks", e.Name, e.Ranks)
				}
				if halo.SentBytes != halo.RecvBytes {
					return fmt.Errorf("entry %q: halo bytes unbalanced (%d sent, %d received)",
						e.Name, halo.SentBytes, halo.RecvBytes)
				}
				if e.Coalesce && e.CommBytes.Frame.SentMsgs == 0 {
					return fmt.Errorf("entry %q: coalesced entry recorded no frames", e.Name)
				}
				base := strings.TrimSuffix(e.Name, "/prec="+e.Precision)
				if haloSent[base] == nil {
					haloSent[base] = map[string]int64{}
				}
				haloSent[base][e.Precision] = halo.SentBytes
			}
		} else {
			if e.Halo != "" || e.Coalesce || e.CommBytes != nil {
				return fmt.Errorf("entry %q: intra-node entry carries distributed fields", e.Name)
			}
			if e.Layout != "aos" && e.Layout != "soa" {
				return fmt.Errorf("entry %q: layout %q, want aos or soa", e.Name, e.Layout)
			}
			if err := checkRefine(e); err != nil {
				return err
			}
			if e.Refine != "none" && cellsOf(e.Grid) >= paperCells && e.Fused && e.Layout == "aos" {
				// The paper-size speedup gate: a refined entry must beat
				// its uniform twin end to end. The descriptor's update
				// ratio is ~2.4 at the preset geometry, so 1.5x leaves
				// headroom for the refined path's per-site overhead and
				// CI noise while still catching a refinement that stopped
				// paying for itself. The gate applies on the fused AoS
				// path — the headline configuration the README quotes.
				// The slabs' small planes magnify SoA's fixed per-plane
				// costs (lane-shift fix-ups, pass-split tiling) and the
				// reference path's separate sweeps, so those rows record
				// their measured effective MLUPS without a floor.
				if twin, ok := uniformTwin[twinKey(e)]; ok && e.EffectiveMLUPS < 1.5*twin {
					return fmt.Errorf("entry %q: effective %.2f MLUPS under 1.5x the uniform twin's %.2f", e.Name, e.EffectiveMLUPS, twin)
				}
			}
			// Every intra entry must carry its scaling efficiency, it
			// must agree with the sweep's own workers=1 baseline, and
			// on paper-size grids multi-worker configurations must
			// clear the 0.7 gate: MLUPS(w) >= 0.7 * min(w, GOMAXPROCS)
			// * MLUPS(1). Sub-gate entries are the regression this
			// validator exists to catch — a scheduler whose extra
			// workers don't multiply.
			if e.ScalingEff <= 0 {
				return fmt.Errorf("entry %q: missing scaling_efficiency", e.Name)
			}
			base, ok := intraBase[intraKey(e)]
			if !ok {
				return fmt.Errorf("entry %q: no workers=1 baseline in report", e.Name)
			}
			want := scalingEfficiency(e.MLUPS, base, e.Workers, rep.GOMAXPROCS)
			if diff := e.ScalingEff - want; diff < -1e-6*want || diff > 1e-6*want {
				return fmt.Errorf("entry %q: scaling_efficiency %v, recomputed %v", e.Name, e.ScalingEff, want)
			}
			if e.Workers > 1 && cellsOf(e.Grid) >= paperCells && e.ScalingEff < minScalingEfficiency {
				return fmt.Errorf("entry %q: scaling_efficiency %.3f below the %.1f gate on a paper-size grid (workers=%d, gomaxprocs=%d)",
					e.Name, e.ScalingEff, minScalingEfficiency, e.Workers, rep.GOMAXPROCS)
			}
		}
	}
	// Where a distributed configuration was measured at both precisions,
	// the f32 wire must actually compress: packed payloads are half the
	// words plus at most one per message (odd frame lengths), so the
	// halo-byte ratio sits in a tight band around 0.5.
	for base, byPrec := range haloSent {
		b32, ok32 := byPrec["f32"]
		b64, ok64 := byPrec["f64"]
		if !ok32 || !ok64 {
			continue
		}
		if ratio := float64(b32) / float64(b64); ratio < 0.45 || ratio > 0.55 {
			return fmt.Errorf("%s: f32 halo bytes %d are %.3fx the f64 bytes %d, want ~0.5",
				base, b32, ratio, b64)
		}
	}
	return nil
}

// checkRefine validates an intra entry's refinement fields: the refine
// tag must be "none" (with no effective rate) or "wl<N>", and a refined
// entry's effective/actual MLUPS ratio must equal the descriptor's
// fine-equivalent/refined site-update ratio — both rates divide the
// same wall time, so the quotient is exact arithmetic, independent of
// machine noise, and catches a writer whose two rates drifted apart.
func checkRefine(e Entry) error {
	if e.Refine == "" {
		return fmt.Errorf("entry %q: intra-node entry missing refine (want \"none\" or \"wl<N>\")", e.Name)
	}
	if e.Refine == "none" {
		if e.EffectiveMLUPS != 0 {
			return fmt.Errorf("entry %q: uniform entry carries effective_mlups", e.Name)
		}
		return nil
	}
	wl, err := strconv.Atoi(strings.TrimPrefix(e.Refine, "wl"))
	if err != nil || !strings.HasPrefix(e.Refine, "wl") || wl < 1 {
		return fmt.Errorf("entry %q: refine %q, want \"none\" or \"wl<N>\"", e.Name, e.Refine)
	}
	if e.EffectiveMLUPS <= 0 {
		return fmt.Errorf("entry %q: refined entry missing effective_mlups", e.Name)
	}
	// Effective may sit BELOW actual on tiny grids: the slabs' ghost
	// rows and the coarse block's padding are real work the
	// fine-equivalent count doesn't credit, and on a channel barely
	// deep enough to refine they dominate. The ratio check below is
	// exact either way; the speedup gate applies at paper size only.
	spec := lbm.RefineSpec{Levels: 2, WallLayers: wl}
	refined, fineEq, err := spec.SiteUpdatesPerStep(lbm.WaterAir(e.Grid[0], e.Grid[1], e.Grid[2]))
	if err != nil {
		return fmt.Errorf("entry %q: refine %q impossible on grid %v: %v", e.Name, e.Refine, e.Grid, err)
	}
	want, got := fineEq/refined, e.EffectiveMLUPS/e.MLUPS
	if diff := got - want; diff < -1e-6*want || diff > 1e-6*want {
		return fmt.Errorf("entry %q: effective/actual ratio %v, descriptor says %v", e.Name, got, want)
	}
	return nil
}

func addTag(dst *TagJSON, o TagJSON) {
	dst.SentBytes += o.SentBytes
	dst.RecvBytes += o.RecvBytes
	dst.SentMsgs += o.SentMsgs
	dst.RecvMsgs += o.RecvMsgs
}

func parseGrids(s string) ([][3]int, error) {
	var out [][3]int
	for _, part := range strings.Split(s, ",") {
		dims := strings.Split(strings.TrimSpace(part), "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("grid %q: want NXxNYxNZ", part)
		}
		var g [3]int
		for i, d := range dims {
			v, err := strconv.Atoi(d)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("grid %q: bad dimension %q", part, d)
			}
			g[i] = v
		}
		out = append(out, g)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parsePrecisions parses the comma-separated -precision list.
func parsePrecisions(s string) ([]lbm.Precision, error) {
	var out []lbm.Precision
	for _, part := range strings.Split(s, ",") {
		p, err := lbm.ParsePrecision(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty precision list")
	}
	return out, nil
}

// parseLayouts maps the -layout selector onto the layout sweep.
func parseLayouts(s string) ([]lbm.Layout, error) {
	switch s {
	case "both":
		return []lbm.Layout{lbm.AoS, lbm.SoA}, nil
	case "aos":
		return []lbm.Layout{lbm.AoS}, nil
	case "soa":
		return []lbm.Layout{lbm.SoA}, nil
	}
	return nil, fmt.Errorf("%q: want aos, soa, or both", s)
}

// writeLookupProfile flushes a named runtime profile (block, mutex) to
// a file at the end of the sweep.
func writeLookupProfile(name, path string) {
	p := pprof.Lookup(name)
	if p == nil {
		log.Printf("-%sprofile: profile %q not found", name, name)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("-%sprofile: %v", name, err)
		return
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		log.Printf("-%sprofile: %v", name, err)
	}
}

// parseHalo maps the wire-format selector onto the WideHalo option.
func parseHalo(s string) ([]bool, error) {
	switch s {
	case "both":
		return []bool{false, true}, nil
	case "slim":
		return []bool{false}, nil
	case "wide":
		return []bool{true}, nil
	}
	return nil, fmt.Errorf("%q: want both, slim, or wide", s)
}

func parseToggle(s string) ([]bool, error) {
	switch s {
	case "both":
		return []bool{false, true}, nil
	case "on":
		return []bool{true}, nil
	case "off":
		return []bool{false}, nil
	}
	return nil, fmt.Errorf("%q: want both, on, or off", s)
}
