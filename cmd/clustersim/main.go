// Command clustersim runs one virtual-cluster performance experiment:
// a remapping scheme against a background-job workload on the paper's
// 20-node setup. Experiments come either from a JSON config file or
// from flags.
//
// Usage:
//
//	clustersim -config experiment.json
//	clustersim -policy filtered -phases 600 -workload fixed-slow -slow 9
//	clustersim -policy global -workload spikes -spike 2
//	clustersim -policy none -workload duty-cycle -node 9 -duty 0.8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"microslip/internal/config"
	"microslip/internal/runctl"
	"microslip/internal/vcluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clustersim: ")
	var (
		cfgPath  = flag.String("config", "", "JSON experiment file (overrides other flags)")
		policy   = flag.String("policy", "filtered", "remapping scheme: none|filtered|conservative|global")
		nodes    = flag.Int("nodes", 20, "cluster nodes")
		phases   = flag.Int("phases", 600, "LBM phases")
		workload = flag.String("workload", "fixed-slow", "workload: dedicated|fixed-slow|duty-cycle|spikes")
		slow     = flag.String("slow", "", "comma-separated slow node indices (fixed-slow)")
		count    = flag.Int("slow-count", 1, "number of spread slow nodes when -slow is empty")
		node     = flag.Int("node", 10, "disturbed node (duty-cycle)")
		duty     = flag.Float64("duty", 0.7, "competing-job duty cycle (duty-cycle)")
		spike    = flag.Float64("spike", 2, "spike length in seconds (spikes)")
		seed     = flag.Int64("seed", 1, "workload and jitter seed")
		haloDirs = flag.Int("halo-dirs", 0, "distribution populations per cell on the halo wire: 19 full, 5 slim (0 = full)")
		coalesce = flag.Bool("coalesce", false, "model the coalesced one-frame-per-neighbor halo protocol")
		profileF = flag.Bool("profile", false, "print the per-node time breakdown")
		timeline = flag.String("timeline", "", "write the per-phase makespan timeline as CSV to this file")
	)
	flag.Parse()

	var exp *config.Experiment
	if *cfgPath != "" {
		var err error
		exp, err = config.ReadFile(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		exp = &config.Experiment{
			Nodes: *nodes, Phases: *phases, Policy: *policy, Seed: *seed,
			Workload: config.Workload{
				Type: *workload, SlowCount: *count, Node: *node,
				Duty: *duty, SpikeSeconds: *spike,
			},
		}
		if *slow != "" {
			for _, part := range strings.Split(*slow, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					log.Fatalf("bad -slow entry %q: %v", part, err)
				}
				exp.Workload.SlowNodes = append(exp.Workload.SlowNodes, n)
			}
		}
		if *workload != "spikes" {
			exp.Workload.SpikeSeconds = 0
		}
		exp.Default()
		if err := exp.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	cfg, err := exp.BuildConfig()
	if err != nil {
		log.Fatal(err)
	}
	cfg.RecordTimeline = *timeline != ""
	cfg.Costs.DistHaloDirs = *haloDirs
	cfg.Costs.CoalescedHalo = *coalesce
	if err := cfg.Costs.Validate(); err != nil {
		log.Fatal(err)
	}
	// SIGINT/SIGTERM interrupt the phase loop at the next boundary; the
	// partial trajectory simulated so far is still reported and written.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	cfg.Ctx = ctx
	res, err := vcluster.Run(cfg)
	interrupted := errors.Is(err, runctl.ErrCanceled)
	if err != nil && !interrupted {
		log.Fatal(err)
	}
	if interrupted {
		fmt.Printf("interrupted: %d of %d phases simulated; partial trajectory follows\n",
			res.CompletedPhases, exp.Phases)
	}

	fmt.Printf("scheme %s, workload %s, %d nodes, %d phases\n",
		exp.Policy, exp.Workload.Type, exp.Nodes, exp.Phases)
	fmt.Printf("execution time   %10.1f s\n", res.TotalTime)
	fmt.Printf("sequential time  %10.1f s\n", res.SequentialTime)
	fmt.Printf("speedup          %10.2f\n", res.Speedup())
	fmt.Printf("planes moved     %10d in %d remapping rounds\n", res.PlanesMoved, res.RemapRounds)
	if res.ExchangeRetries > 0 {
		fmt.Printf("exchange retries %10d (wire loss rate %g)\n",
			res.ExchangeRetries, cfg.ExchangeFailureRate)
	}
	if res.Deaths > 0 {
		fmt.Printf("node deaths      %10d survived (%d phases replayed, %.1f s recovery)\n",
			res.Deaths, res.ReplayedPhases, res.RecoveryTime)
	}
	fmt.Printf("final planes     %v\n", res.FinalPartition.Counts())
	if *profileF {
		fmt.Println()
		fmt.Print(res.Profile.String())
	}
	if *timeline != "" {
		if err := os.WriteFile(*timeline, []byte(res.Timeline.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s (p50 %.3f s, p95 %.3f s per phase)\n",
			*timeline, res.Timeline.Percentile(0.5), res.Timeline.Percentile(0.95))
	}
}
