// Command benchtables regenerates every table and figure of the
// paper's evaluation (Section 4) plus the ablation studies, printing
// each as an ASCII table and optionally writing them under a results
// directory.
//
// Usage:
//
//	benchtables [-quick] [-out results] [-exp all|fig3|fig6|fig7|fig8|fig9|fig10|table1|speedup|ablations]
//
// -quick shrinks phase counts and the physics grid so the full sweep
// finishes in well under a minute; the default runs the paper-scale
// phase counts (20,000 for Figure 8) and a larger physics grid.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"microslip/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")
	var (
		quick = flag.Bool("quick", false, "reduced sizes for a fast sweep")
		out   = flag.String("out", "", "directory to write per-experiment .txt files")
		exp   = flag.String("exp", "all", "which experiment to run")
	)
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	setup := experiments.PaperSetup()
	figPhases := 600
	fig8Phases := 20000
	table1Phases := 100
	physics := experiments.PhysicsSetup{NX: 64, NY: 64, NZ: 16, Steps: 6000, SampleZ: 8}
	if *quick {
		figPhases = 300
		fig8Phases = 2000
		physics = experiments.PhysicsSetup{NX: 16, NY: 40, NZ: 10, Steps: 1500, SampleZ: 5}
	}

	type job struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	table := func(f func() (interface{ Table() string }, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f()
			if err != nil {
				return nil, err
			}
			out := r.Table()
			if p, ok := r.(interface{ PlotDensity() string }); ok {
				out += "\n" + p.PlotDensity()
			}
			if p, ok := r.(interface{ Plot() string }); ok {
				out += "\n" + p.Plot()
			}
			return stringer{out}, nil
		}
	}
	jobs := []job{
		{"fig3", table(func() (interface{ Table() string }, error) {
			return experiments.RunFig3(setup, figPhases, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
		})},
		{"fig6-fig7", table(func() (interface{ Table() string }, error) {
			return experiments.RunSlipPhysics(physics)
		})},
		{"speedup", table(func() (interface{ Table() string }, error) {
			return experiments.RunSpeedupCurve(setup, figPhases, []int{1, 2, 4, 8, 10, 16, 20})
		})},
		{"fig8", table(func() (interface{ Table() string }, error) {
			return experiments.RunFig8(setup, fig8Phases, 5)
		})},
		{"fig9", table(func() (interface{ Table() string }, error) {
			return experiments.RunFig9(setup, figPhases)
		})},
		{"fig10", table(func() (interface{ Table() string }, error) {
			return experiments.RunFig10(setup, figPhases, 5)
		})},
		{"table1", table(func() (interface{ Table() string }, error) {
			return experiments.RunTable1(setup, table1Phases, []float64{1, 2, 3, 4})
		})},
		{"ablation-predictors", table(func() (interface{ Table() string }, error) {
			return experiments.RunAblationPredictors(setup, figPhases)
		})},
		{"ablation-overredistribution", table(func() (interface{ Table() string }, error) {
			return experiments.RunAblationOverRedistribution(setup, figPhases)
		})},
		{"ablation-laziness", table(func() (interface{ Table() string }, error) {
			return experiments.RunAblationLaziness(setup, figPhases)
		})},
		{"ablation-threshold", table(func() (interface{ Table() string }, error) {
			return experiments.RunAblationThreshold(setup, figPhases)
		})},
		{"ablation-wallforce", table(func() (interface{ Table() string }, error) {
			steps := 4000
			if *quick {
				steps = 1500
			}
			return experiments.RunWallForceSensitivity(8, 48, steps,
				[]float64{0.025, 0.05, 0.1, 0.2, 0.4, 0.8}, []float64{1, 2, 4, 8})
		})},
	}

	want := strings.ToLower(*exp)
	matched := false
	for _, j := range jobs {
		if want != "all" &&
			!(want == j.name) &&
			!(want == "fig6" && j.name == "fig6-fig7") &&
			!(want == "fig7" && j.name == "fig6-fig7") &&
			!(want == "ablations" && strings.HasPrefix(j.name, "ablation")) {
			continue
		}
		matched = true
		s, err := j.run()
		if err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		fmt.Printf("==== %s ====\n%s\n", j.name, s)
		if *out != "" {
			path := filepath.Join(*out, j.name+".txt")
			if err := os.WriteFile(path, []byte(s.String()), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if !matched {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

type stringer struct{ s string }

func (s stringer) String() string { return s.s }
