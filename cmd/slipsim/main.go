// Command slipsim runs the fluid-slip physics simulation (Figures 6
// and 7 of the paper): a two-component water/air-vapor mixture in a
// hydrophobic microchannel. It prints the near-wall density and
// velocity profiles and can emit the full profiles as CSV.
//
// Usage:
//
//	slipsim [-nx 32] [-ny 48] [-nz 12] [-steps 3000] [-csv out.csv]
//	        [-checkpoint state.gob] [-resume state.gob]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"microslip/internal/checkpoint"
	"microslip/internal/experiments"
	"microslip/internal/lbm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slipsim: ")
	var (
		nx       = flag.Int("nx", 32, "lattice points along the channel (paper: 400)")
		ny       = flag.Int("ny", 48, "lattice points across the width (paper: 200)")
		nz       = flag.Int("nz", 12, "lattice points across the depth (paper: 20)")
		steps    = flag.Int("steps", 3000, "LBM phases to run (paper: 20,000+)")
		steady   = flag.Float64("steady", 0, "stop early when the velocity residual falls below this tolerance (0 = run -steps exactly)")
		csvPath  = flag.String("csv", "", "write full profiles as CSV to this file")
		ckptPath = flag.String("checkpoint", "", "write the final wall-force state to this file (runs one additional simulation)")
		resume   = flag.String("resume", "", "resume the wall-force run from a checkpoint file")
	)
	flag.Parse()

	if *resume != "" {
		if err := runResumed(*resume, *steps, *ckptPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	setup := experiments.PhysicsSetup{NX: *nx, NY: *ny, NZ: *nz, Steps: *steps, SampleZ: *nz / 2, SteadyTol: *steady}
	res, err := experiments.RunSlipPhysics(setup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profiles written to %s\n", *csvPath)
	}
	if *ckptPath != "" {
		p := lbm.WaterAir(*nx, *ny, *nz)
		s, err := lbm.NewSim(p)
		if err != nil {
			log.Fatal(err)
		}
		s.AutoWorkers()
		s.RunParallelSteps(*steps)
		if err := checkpoint.SaveFile(*ckptPath, s.State()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckptPath)
	}
}

func runResumed(path string, steps int, ckptPath string) error {
	st, err := checkpoint.LoadFile(path)
	if err != nil {
		return err
	}
	s, err := lbm.FromState(st)
	if err != nil {
		return err
	}
	fmt.Printf("resumed %dx%dx%d at step %d; running %d more steps\n",
		st.Params.NX, st.Params.NY, st.Params.NZ, s.StepCount(), steps)
	s.AutoWorkers()
	s.RunParallelSteps(steps)
	if err := s.CheckFinite(); err != nil {
		return err
	}
	fmt.Printf("now at step %d; total water mass %.6g\n", s.StepCount(), s.TotalMass(0))
	if ckptPath != "" {
		if err := checkpoint.SaveFile(ckptPath, s.State()); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", ckptPath)
	}
	return nil
}
