// Command slipsim runs the fluid-slip physics simulation (Figures 6
// and 7 of the paper): a two-component water/air-vapor mixture in a
// hydrophobic microchannel. It prints the near-wall density and
// velocity profiles and can emit the full profiles as CSV.
//
// Usage:
//
//	slipsim [-nx 32] [-ny 48] [-nz 12] [-steps 3000] [-csv out.csv]
//	        [-precision f64|f32] [-checkpoint state.gob] [-resume state.gob]
//	slipsim -compare-precision [-nx ...] [-steps ...]
//	slipsim -compare-refined [-wall-layers 12] [-nx ...] [-steps ...]
//	slipsim -checkpoint-dir ckpt -checkpoint-interval 500 -ranks 4
//	slipsim -resume-dir ckpt -steps 1000
//
// -precision f32 runs the single-precision core (half the lattice
// memory; checkpoints store float32 payloads and resume at their
// recorded precision). -compare-precision runs the slip case at both
// precisions and prints the accuracy comparison backing the
// EXPERIMENTS.md table. -compare-refined does the same for the
// two-level near-wall refined solver against the uniform-fine one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"microslip/internal/checkpoint"
	"microslip/internal/experiments"
	"microslip/internal/lbm"
	"microslip/internal/parlbm"
	"microslip/internal/runctl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slipsim: ")
	var (
		nx       = flag.Int("nx", 32, "lattice points along the channel (paper: 400)")
		ny       = flag.Int("ny", 48, "lattice points across the width (paper: 200)")
		nz       = flag.Int("nz", 12, "lattice points across the depth (paper: 20)")
		steps    = flag.Int("steps", 3000, "LBM phases to run (paper: 20,000+)")
		steady   = flag.Float64("steady", 0, "stop early when the velocity residual falls below this tolerance (0 = run -steps exactly)")
		csvPath  = flag.String("csv", "", "write full profiles as CSV to this file")
		ckptPath = flag.String("checkpoint", "", "write the final wall-force state to this file (runs one additional simulation)")
		resume   = flag.String("resume", "", "resume the wall-force run from a checkpoint file")
		ckptDir  = flag.String("checkpoint-dir", "", "run a distributed water/air simulation with coordinated checkpoints in this directory")
		ckptInt  = flag.Int("checkpoint-interval", 500, "phases between coordinated checkpoints (-checkpoint-dir/-resume-dir)")
		resumeD  = flag.String("resume-dir", "", "resume a distributed run from the latest committed coordinated checkpoint in this directory")
		ranks    = flag.Int("ranks", 4, "simulated ranks for the distributed run (-checkpoint-dir/-resume-dir)")
		precFlag = flag.String("precision", "f64", "scalar precision of the solver core: f64 or f32")
		cmpPrec  = flag.Bool("compare-precision", false, "run the slip case at both precisions and print the accuracy comparison")
		cmpRef   = flag.Bool("compare-refined", false, "run the slip case uniform-fine and refined and print the accuracy comparison")
		wallLay  = flag.Int("wall-layers", 12, "fine rows per wall slab for -compare-refined")
		wallLim  = flag.Duration("wall-limit", 0, "stop the run after this wall-clock budget, checkpointing what completed (0 = unlimited)")
	)
	flag.Parse()

	// SIGINT/SIGTERM stop the run at the next step/phase boundary
	// instead of killing it mid-write: distributed runs commit a
	// coordinated interrupt checkpoint, sequential runs with -checkpoint
	// persist the partial state, and the exit message names the resume
	// flag. A second signal kills the process the usual way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	prec, err := lbm.ParsePrecision(*precFlag)
	if err != nil {
		log.Fatalf("-precision: %v", err)
	}

	if *cmpPrec {
		setup := experiments.PhysicsSetup{NX: *nx, NY: *ny, NZ: *nz, Steps: *steps, SampleZ: *nz / 2, SteadyTol: *steady}
		cmp, err := experiments.RunPrecisionAccuracy(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(cmp.Table())
		return
	}

	if *cmpRef {
		setup := experiments.PhysicsSetup{NX: *nx, NY: *ny, NZ: *nz, Steps: *steps, SampleZ: *nz / 2, SteadyTol: *steady, Precision: prec}
		cmp, err := experiments.RunRefinedAccuracy(setup, lbm.RefineSpec{Levels: 2, WallLayers: *wallLay})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(cmp.Table())
		return
	}

	if *ckptDir != "" || *resumeD != "" {
		if err := runDistributed(ctx, *wallLim, *ckptDir, *resumeD, *nx, *ny, *nz, *steps, *ranks, *ckptInt); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *resume != "" {
		if err := runResumed(ctx, *wallLim, *resume, *steps, *ckptPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	setup := experiments.PhysicsSetup{NX: *nx, NY: *ny, NZ: *nz, Steps: *steps, SampleZ: *nz / 2, SteadyTol: *steady, Precision: prec,
		Sup: runctl.NewSupervisor(ctx, *wallLim)}
	res, err := experiments.RunSlipPhysics(setup)
	if runctl.IsInterrupt(err) {
		log.Fatalf("interrupted before the profiles were sampled: %v", err)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profiles written to %s\n", *csvPath)
	}
	if *ckptPath != "" {
		p := lbm.WaterAir(*nx, *ny, *nz)
		p.Precision = prec
		s, err := lbm.NewSolver(p)
		if err != nil {
			log.Fatal(err)
		}
		s.AutoWorkers()
		done, err := s.RunSupervised(*steps, runctl.NewSupervisor(ctx, *wallLim))
		if err != nil && !runctl.IsInterrupt(err) {
			log.Fatal(err)
		}
		if saveErr := checkpoint.SaveFile(*ckptPath, s.State()); saveErr != nil {
			log.Fatal(saveErr)
		}
		if err != nil {
			fmt.Printf("interrupted at step %d of %d (%v); partial checkpoint written to %s (resume with -resume %s)\n",
				done, *steps, err, *ckptPath, *ckptPath)
			return
		}
		fmt.Printf("checkpoint written to %s\n", *ckptPath)
	}
}

// runDistributed runs the water/air simulation across simulated ranks
// with coordinated checkpointing. With -resume-dir it restores the
// latest committed checkpoint (the manifest carries the lattice
// parameters, so no geometry flags are needed) and runs -steps more
// phases; new checkpoints land in -checkpoint-dir, defaulting to the
// resume directory.
func runDistributed(ctx context.Context, wallLim time.Duration, ckptDir, resumeDir string, nx, ny, nz, steps, ranks, interval int) error {
	p := lbm.WaterAir(nx, ny, nz)
	phases := steps
	var snap *checkpoint.RunSnapshot
	if resumeDir != "" {
		var err error
		snap, err = checkpoint.LatestRun(resumeDir)
		if err != nil {
			return err
		}
		if snap.Params == nil {
			return fmt.Errorf("checkpoint in %s carries no lattice parameters", resumeDir)
		}
		p = snap.Params
		phases = snap.Phase + steps
		fmt.Printf("resumed %dx%dx%d from committed phase %d in %s; running %d more phases\n",
			p.NX, p.NY, p.NZ, snap.Phase, resumeDir, steps)
		if ckptDir == "" {
			ckptDir = resumeDir
		}
	}
	fields, results, err := parlbm.RunParallel(p, ranks, parlbm.Options{
		Phases:     phases,
		Ctx:        ctx,
		WallLimit:  wallLim,
		Checkpoint: &parlbm.CheckpointSpec{Dir: ckptDir, Interval: interval, Snapshot: snap},
	})
	if err != nil {
		var re *parlbm.RankError
		if runctl.IsInterrupt(err) && errors.As(err, &re) {
			// Orderly interrupt: the group agreed on a stop boundary and
			// committed a coordinated checkpoint there.
			stop := -1
			for _, r := range results {
				if r != nil && r.Interrupted != nil {
					stop = r.Interrupted.Phase
				}
			}
			fmt.Printf("interrupted at phase %d of %d\n", stop, phases)
			if m, cerr := checkpoint.LatestCommitted(ckptDir); cerr == nil {
				fmt.Printf("committed checkpoint at phase %d (resume with -resume-dir %s)\n", m.Phase, ckptDir)
			}
			return nil
		}
		return err
	}
	written := 0
	for _, r := range results {
		if r.Rank == 0 {
			written = r.Checkpoints
		}
	}
	fmt.Printf("ran %d ranks to phase %d; %d coordinated checkpoints written to %s\n",
		ranks, phases, written, ckptDir)
	fmt.Printf("total water mass %.6g\n", fields[0].TotalMass())
	if m, err := checkpoint.LatestCommitted(ckptDir); err == nil {
		fmt.Printf("latest committed checkpoint: phase %d (resume with -resume-dir %s)\n", m.Phase, ckptDir)
	}
	return nil
}

func runResumed(ctx context.Context, wallLim time.Duration, path string, steps int, ckptPath string) error {
	st, err := checkpoint.LoadFile(path)
	if err != nil {
		return err
	}
	// SolverFromState honors the snapshot's recorded precision, so a
	// float32 checkpoint resumes on the float32 core bit-stably.
	s, err := lbm.SolverFromState(st)
	if err != nil {
		return err
	}
	fmt.Printf("resumed %dx%dx%d at step %d (%s); running %d more steps\n",
		st.Params.NX, st.Params.NY, st.Params.NZ, s.StepCount(), st.Params.Precision, steps)
	s.AutoWorkers()
	done, runErr := s.RunSupervised(steps, runctl.NewSupervisor(ctx, wallLim))
	if runErr != nil && !runctl.IsInterrupt(runErr) {
		return runErr
	}
	if err := s.CheckFinite(); err != nil {
		return err
	}
	if runErr != nil {
		fmt.Printf("interrupted at step %d of %d (%v)\n", done, steps, runErr)
		if ckptPath != "" {
			if err := checkpoint.SaveFile(ckptPath, s.State()); err != nil {
				return err
			}
			fmt.Printf("partial checkpoint written to %s (resume with -resume %s)\n", ckptPath, ckptPath)
		}
		return nil
	}
	fmt.Printf("now at step %d; total water mass %.6g\n", s.StepCount(), s.TotalMass(0))
	if ckptPath != "" {
		if err := checkpoint.SaveFile(ckptPath, s.State()); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", ckptPath)
	}
	return nil
}
