GO ?= go

.PHONY: check build vet test race race-lbm race-layout chaos chaos-kill chaos-abort bench bench-json bench-paper bench-smoke bench-layout bench-refine serve-smoke fuzz

# The CI gate: compile everything, vet, run the full suite, the race
# detector in short mode (the -short guard trims the long chaos and
# physics soaks so the race pass stays around a minute), then the
# benchmark smoke sweep with schema validation.
check: build vet test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Full-mode (not -short) race pass over the intra-node ownership
# scheduler and the distributed pipeline: the band workers' boundary
# token exchange and the halo protocols are the synchronization most
# worth re-proving on every change.
race-lbm: race-layout
	$(GO) test -race -count=1 ./internal/lbm/... ./internal/parlbm/...

# Targeted race pass over the layout matrix: the AoS x SoA bit-identity
# rows (both stepping paths, both precisions, multi-band), the layout
# run-artifact comparisons, and the SoA zero-alloc legs — the SoA
# kernels' multi-band and distributed scheduling re-proved directly.
race-layout:
	$(GO) test -race -count=1 -run 'TestBitIdentityMatrix|TestLayout|TestPackBytesLayoutIndependent|TestStepParallelZeroAllocs|TestTranspose' ./internal/lbm/ ./internal/parlbm/ ./internal/field/

# The full chaos suite under the race detector (several minutes): every
# seeded fault schedule against the distributed pipeline.
chaos:
	$(GO) test -race -run 'Chaos|Masks|Fault' ./internal/experiments/ ./internal/parlbm/ ./internal/comm/

# The permanent-death recovery sweep under the race detector: seeded
# rank kills after committed checkpoints, shrink-to-survivors recovery,
# bit-identical final fields.
chaos-kill:
	$(GO) test -race -run 'KillChaos|Recoverable' -v ./internal/experiments/ ./internal/parlbm/

# The abort-safety sweep under the race detector: seeded cancels, wall
# limits, worker panics, and worker stalls against both the intra-node
# band scheduler and the distributed phase loop — typed unwind, zero
# leaked goroutines, committed interrupt checkpoints, bit-identical
# resume.
chaos-abort:
	$(GO) test -race -run 'AbortChaos|RunParallelCancel|RunParallelWallLimit|RunParallelRankPanic|RunSupervised' -v ./internal/experiments/ ./internal/parlbm/ ./internal/lbm/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The perf-trajectory sweep: pinned-size step benchmarks over the
# intra-node (reference and fused) and distributed solvers — the latter
# across the slim/wide halo wire formats with measured comm_bytes, at
# both scalar precisions — written to BENCH_<date>.json (schema
# microslip-bench/v3, validated after the write). Commit the report to
# record a perf point in history.
bench-json:
	$(GO) run ./cmd/lbmbench -precision f64,f32
	$(GO) run ./cmd/lbmbench -check $$(ls -t BENCH_*.json | head -1)

# The paper-size sweep behind the committed BENCH trajectory: the
# 32x48x16 continuity grid plus 200x100x20 and 400x200x20 at workers
# 1..8, both precisions, with the scaling-efficiency gate enforced by
# the -check pass.
bench-paper:
	$(GO) run ./cmd/lbmbench -paper -precision f64,f32
	$(GO) run ./cmd/lbmbench -check $$(ls -t BENCH_*.json | head -1)

# A few-second version of the sweep for CI: ranks=2 across slim, wide,
# and coalesced halo configurations, emitted as bench_smoke.json; the
# schema check also validates the comm_bytes accounting (presence,
# sent/recv balance, nonzero halo traffic — and, when both precisions
# are present, that the f32 wire ships ~half the halo bytes). CI runs
# this as a matrix over BENCH_PRECISION; the default sweeps both
# precisions in one report so the compression cross-check applies.
BENCH_PRECISION ?= f64,f32
BENCH_LAYOUT ?= both
BENCH_REFINE ?= both
bench-smoke:
	$(GO) run ./cmd/lbmbench -quick -precision $(BENCH_PRECISION) -layout $(BENCH_LAYOUT) -refine $(BENCH_REFINE) -out bench_smoke.json
	$(GO) run ./cmd/lbmbench -check bench_smoke.json

# The refined-vs-uniform comparison at paper size: the 200x100x20 slip
# grid on the fused intra-node solver, uniform and two-level refined
# (12 fine rows per wall slab), one precision. The -check pass gates
# the refined entry's effective MLUPS against its uniform twin — the
# committed number behind the README's refinement speedup claim.
bench-refine:
	$(GO) run ./cmd/lbmbench -grid 200x100x20 -steps 40 -warmup 8 -workers 1 -ranks 1 \
		-fused on -overlap off -halo slim -coalesce off -layout aos -refine both \
		-precision f64 -out bench_refine.json
	$(GO) run ./cmd/lbmbench -check bench_refine.json

# The AoS-vs-SoA layout comparison on the smoke grid: both layouts,
# both stepping paths, one precision — the quick answer to "did a
# kernel change shift the layout tradeoff?" before paying for
# bench-paper.
bench-layout:
	$(GO) run ./cmd/lbmbench -quick -precision f64 -layout both -out bench_layout.json
	$(GO) run ./cmd/lbmbench -check bench_layout.json

# End-to-end smoke of the job server: boot slipd, push a loadgen burst
# through it, leave long jobs in flight, SIGTERM, and assert the
# graceful-drain contract — exit 0, every in-flight job persisted as
# interrupted+resumable with its checkpoint on disk, and a restarted
# server resuming one of them to completion.
serve-smoke:
	./scripts/serve_smoke.sh

# Coverage-guided fuzzing beyond the committed seed corpora.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/config/
	$(GO) test -fuzz FuzzPolicyRound -fuzztime 30s ./internal/balance/
