GO ?= go

.PHONY: check build vet test race chaos chaos-kill bench fuzz

# The CI gate: compile everything, vet, run the full suite, then the
# race detector in short mode (the -short guard trims the long chaos
# and physics soaks so the race pass stays around a minute).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The full chaos suite under the race detector (several minutes): every
# seeded fault schedule against the distributed pipeline.
chaos:
	$(GO) test -race -run 'Chaos|Masks|Fault' ./internal/experiments/ ./internal/parlbm/ ./internal/comm/

# The permanent-death recovery sweep under the race detector: seeded
# rank kills after committed checkpoints, shrink-to-survivors recovery,
# bit-identical final fields.
chaos-kill:
	$(GO) test -race -run 'KillChaos|Recoverable' -v ./internal/experiments/ ./internal/parlbm/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Coverage-guided fuzzing beyond the committed seed corpora.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/config/
	$(GO) test -fuzz FuzzPolicyRound -fuzztime 30s ./internal/balance/
