// Nondedicated demonstrates the paper's parallel-performance story on
// the virtual 20-node cluster: a background job on one node drags the
// whole phase-synchronized computation (the ripple effect), and the
// filtered dynamic remapping recovers most of the loss by draining the
// slow node. Compares all four schemes and prints the filtered scheme's
// per-node profile.
package main

import (
	"flag"
	"fmt"
	"log"

	"microslip"
)

func main() {
	log.SetFlags(0)
	var (
		phases = flag.Int("phases", 600, "LBM phases (the paper's Figure 9 uses 600)")
		slow   = flag.Int("slow", 10, "index of the slow node")
	)
	flag.Parse()

	setup := microslip.PaperSetup()
	slowTraces := microslip.FixedSlowNodes(setup.P, []int{*slow})

	fmt.Printf("20-node virtual cluster, node %d hosts a 70%% background job, %d phases\n\n", *slow, *phases)

	run := func(name string, pol microslip.Policy, traces []microslip.SpeedTrace) *microslip.ClusterResult {
		cfg := defaultCfg(setup, pol, traces, *phases)
		res, err := microslip.RunCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	ded := run("dedicated", microslip.NoRemapPolicy(), microslip.Dedicated(setup.P))
	fmt.Printf("%-14s %9.1f s   speedup %5.2f\n", "dedicated", ded.TotalTime, ded.Speedup())
	var filtered *microslip.ClusterResult
	for _, name := range []string{"none", "conservative", "global", "filtered"} {
		pol, err := microslip.PolicyByName(name, setup.PlanePoints)
		if err != nil {
			log.Fatal(err)
		}
		res := run(name, pol, slowTraces)
		fmt.Printf("%-14s %9.1f s   speedup %5.2f   +%5.1f%% vs dedicated   slow node keeps %d planes\n",
			name, res.TotalTime, res.Speedup(),
			100*(res.TotalTime-ded.TotalTime)/ded.TotalTime,
			res.FinalPartition.Count(*slow))
		if name == "filtered" {
			filtered = res
		}
	}

	fmt.Println("\nfiltered scheme per-node breakdown (the paper's Figure 9):")
	fmt.Print(filtered.Profile.String())
	fmt.Printf("\nfinal plane assignment: %v\n", filtered.FinalPartition.Counts())
}

func defaultCfg(setup microslip.ClusterSetup, pol microslip.Policy, traces []microslip.SpeedTrace, phases int) microslip.ClusterConfig {
	cfg := clusterDefault(pol, traces, phases)
	cfg.TotalPlanes = setup.TotalPlanes
	cfg.PlanePoints = setup.PlanePoints
	cfg.Seed = setup.Seed
	return cfg
}

// clusterDefault mirrors vcluster.DefaultConfig through the facade.
func clusterDefault(pol microslip.Policy, traces []microslip.SpeedTrace, phases int) microslip.ClusterConfig {
	return microslip.DefaultClusterConfig(pol, traces, phases)
}
