// Groovedwall explores the MEMS-device geometry the paper's
// introduction motivates: a microchannel whose bottom wall carries
// longitudinal ribs, with hydrophobic solid-fluid adhesion repelling
// the water from every surface. The dissolved air/vapor accumulates in
// the grooves between ribs (a Cassie-state-like gas cushion), and the
// flow over the composite surface shows enhanced apparent slip compared
// to the flat hydrophobic wall.
package main

import (
	"flag"
	"fmt"
	"log"

	"microslip"
	"microslip/internal/lbm"
)

func main() {
	log.SetFlags(0)
	var (
		steps = flag.Int("steps", 2000, "LBM phases")
		ribH  = flag.Int("ribh", 3, "rib height in lattice points")
	)
	flag.Parse()

	const nx, ny, nz = 8, 36, 16

	run := func(ribbed bool) *lbm.Sim {
		p := microslip.WaterAirChannel(nx, ny, nz)
		p.WallForceComp = -1                // use adhesion-based hydrophobicity
		p.WallAdhesion = []float64{0.25, 0} // repel water from every surface
		if ribbed {
			// Longitudinal ribs on the low-z wall: solid for z <= ribH
			// at every third y column.
			for y := 2; y < ny-2; y += 3 {
				p.Obstacles = append(p.Obstacles, lbm.Obstacle{Y0: y, Y1: y, Z0: 1, Z1: *ribH})
			}
		}
		s, err := microslip.NewSim(p)
		if err != nil {
			log.Fatal(err)
		}
		s.Run(*steps)
		if err := s.CheckFinite(); err != nil {
			log.Fatal(err)
		}
		return s
	}

	fmt.Printf("grooved hydrophobic wall, %dx%dx%d lattice, %d steps\n\n", nx, ny, nz, *steps)
	flat := run(false)
	ribbed := run(true)

	// Gas accumulation in the grooves: air density just above the
	// groove floor, between ribs, vs the flat-wall case.
	gy := 3 // a groove column (ribs at y = 2, 5, 8, ...)
	gz := 2
	fmt.Printf("air density above the wall floor (y=%d, z=%d):\n", gy, gz)
	fmt.Printf("  flat wall:   %.5f\n", flat.Density(1, 0, gy, gz))
	fmt.Printf("  in a groove: %.5f\n", ribbed.Density(1, 0, gy, gz))

	// Streamwise velocity above the composite surface vs the flat wall,
	// sampled along z at mid-y.
	fmt.Printf("\nstreamwise velocity above the bottom wall (y=%d):\n", ny/2)
	fmt.Printf("%4s %14s %14s\n", "z", "flat", "ribbed")
	for z := 1; z < nz-1; z++ {
		uf, _, _ := flat.Velocity(0, ny/2, z)
		ur, _, _ := ribbed.Velocity(0, ny/2, z)
		fmt.Printf("%4d %14.6e %14.6e\n", z, uf, ur)
	}
	fmt.Println("\nthe gas cushion in the grooves lubricates the near-wall flow;")
	fmt.Println("rib drag dominates if the ribs are too tall (try -ribh).")
}
