// Quickstart: simulate fluid slip in a small hydrophobic microchannel
// and print the headline result — the near-wall water depletion and the
// apparent slip velocity — in under a minute.
package main

import (
	"flag"
	"fmt"
	"log"

	"microslip"
)

func main() {
	log.SetFlags(0)

	// A reduced-scale channel: 16 x 40 x 10 lattice points at 5 nm
	// spacing (the paper runs 400 x 200 x 20). The near-wall physics —
	// set by the wall-force decay length, not the channel size — is the
	// same. The flags exist so smoke tests can shrink the run further.
	var (
		nx    = flag.Int("nx", 16, "lattice points along the channel")
		ny    = flag.Int("ny", 40, "lattice points across the width")
		nz    = flag.Int("nz", 10, "lattice points across the depth")
		steps = flag.Int("steps", 1200, "LBM phases to run")
	)
	flag.Parse()

	setup := microslip.PhysicsSetup{NX: *nx, NY: *ny, NZ: *nz, Steps: *steps, SampleZ: *nz / 2}
	res, err := microslip.RunSlipPhysics(setup)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fluid slip in a hydrophobic microchannel (reduced scale)")
	fmt.Printf("  water density at the wall: %.2f of bulk (depleted)\n", res.WaterDensity[0])
	fmt.Printf("  air/vapor density at wall: %.2f of bulk (enriched)\n", res.AirDensity[0])
	fmt.Printf("  apparent slip:             %.1f%% of free-stream velocity\n", res.SlipPercent)
	fmt.Println()
	fmt.Print(res.Table())
}
