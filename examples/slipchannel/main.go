// Slipchannel reproduces the paper's physics experiment (Figures 6 and
// 7) at configurable resolution: two-component water/air flow in a
// hydrophobic microchannel, reporting the density depletion layer and
// the apparent-slip velocity profile, with optional CSV output and a
// side-by-side run without wall forces for contrast.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"microslip"
)

func main() {
	log.SetFlags(0)
	var (
		nx    = flag.Int("nx", 32, "channel length in lattice points")
		ny    = flag.Int("ny", 48, "channel width in lattice points")
		nz    = flag.Int("nz", 12, "channel depth in lattice points")
		steps = flag.Int("steps", 3000, "LBM phases")
		csv   = flag.String("csv", "", "write profiles as CSV to this file")
	)
	flag.Parse()

	setup := microslip.PhysicsSetup{NX: *nx, NY: *ny, NZ: *nz, Steps: *steps, SampleZ: *nz / 2}
	fmt.Printf("simulating %dx%dx%d channel (%.2f x %.2f x %.2f um) for %d phases...\n",
		*nx, *ny, *nz,
		float64(*nx)*5e-3, float64(*ny)*5e-3, float64(*nz)*5e-3, *steps)
	res, err := microslip.RunSlipPhysics(setup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())

	// The Figure 7 contrast: near-wall normalized velocities.
	fmt.Println("\nFigure 7 contrast (normalized streamwise velocity, near the side wall):")
	fmt.Printf("%10s %14s %14s %10s\n", "dist (nm)", "with forces", "no forces", "delta")
	for i := 0; i < len(res.DistanceNM) && i < 6; i++ {
		fmt.Printf("%10.1f %14.4f %14.4f %+9.4f\n",
			res.DistanceNM[i], res.VelForced[i], res.VelFree[i], res.VelForced[i]-res.VelFree[i])
	}

	if *csv != "" {
		if err := os.WriteFile(*csv, []byte(res.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nfull profiles written to %s\n", *csv)
	}
}
