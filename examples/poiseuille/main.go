// Poiseuille validation: drives a single-component channel flow to
// steady state and compares the velocity profile against the analytic
// parabola (2-D) and the rectangular-duct series solution (3-D),
// demonstrating that the LBM kernels recover Navier-Stokes behaviour.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"microslip"
	"microslip/internal/lbm"
)

func main() {
	log.SetFlags(0)
	var (
		ny    = flag.Int("ny", 35, "channel width in lattice points (2-D run)")
		tau   = flag.Float64("tau", 0.8, "BGK relaxation time")
		gx    = flag.Float64("gx", 1e-6, "driving body force")
		steps = flag.Int("steps", 12000, "LBM phases")
	)
	flag.Parse()

	fmt.Println("== 2-D Poiseuille flow vs analytic parabola ==")
	s2 := lbm.NewSim2D(4, *ny, *tau, *gx)
	s2.Run(*steps)
	var num, den float64
	fmt.Printf("%6s %14s %14s %12s\n", "y", "u (LBM)", "u (exact)", "error")
	for y := 1; y < *ny-1; y++ {
		got := s2.Ux(0, y)
		want := lbm.PoiseuilleExact(*ny, *tau, *gx, y)
		num += (got - want) * (got - want)
		den += want * want
		if y%4 == 1 {
			fmt.Printf("%6d %14.6e %14.6e %11.4f%%\n", y, got, want, 100*(got-want)/want)
		}
	}
	fmt.Printf("relative L2 error: %.3f%%\n\n", 100*math.Sqrt(num/den))

	fmt.Println("== 3-D duct flow (multicomponent kernel, one component) ==")
	p := lbm.SingleFluid(4, 19, 11, 1.0, *gx)
	s3, err := microslip.NewSim(p)
	if err != nil {
		log.Fatal(err)
	}
	s3.Run(4000)
	prof := s3.VelocityProfileY(0, p.NZ/2)
	umax := 0.0
	for _, u := range prof {
		if u > umax {
			umax = u
		}
	}
	fmt.Printf("%6s %14s %10s\n", "y", "u (LBM)", "u/umax")
	for y := 1; y < p.NY-1; y += 2 {
		fmt.Printf("%6d %14.6e %10.4f\n", y, prof[y], prof[y]/umax)
	}
	fmt.Println("profile is symmetric and vanishes at the walls (no-slip).")
}
