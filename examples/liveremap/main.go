// Liveremap demonstrates the paper's mechanism on real wall-clock time,
// not in the virtual cluster: four worker goroutines run the actual
// domain-decomposed LBM solver over in-process message passing while
// one of them is genuinely throttled (it sleeps in proportion to its
// assigned planes, emulating a CPU-hogging background job). Run once
// without remapping and once with the filtered scheme, and compare the
// measured elapsed times — the filtered run drains the slow worker and
// finishes far sooner, exactly as in the paper's Figure 9.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"microslip"
	"microslip/internal/balance"
	"microslip/internal/parlbm"
)

func main() {
	log.SetFlags(0)
	var (
		phases   = flag.Int("phases", 60, "LBM phases")
		slowRank = flag.Int("slow", 1, "rank to throttle")
		perPlane = flag.Duration("delay", 2*time.Millisecond, "extra delay per plane per phase on the slow rank")
	)
	flag.Parse()

	p := microslip.WaterAirChannel(32, 16, 8)
	const ranks = 4

	throttle := func(rank, planes, phase int) {
		if rank == *slowRank {
			time.Sleep(time.Duration(planes) * *perPlane)
		}
	}

	run := func(policy microslip.Policy) (time.Duration, []*parlbm.Result) {
		pol := policy
		start := time.Now()
		_, results, err := microslip.RunParallel(p, ranks, parlbm.Options{
			Phases:   *phases,
			Policy:   pol,
			Throttle: throttle,
		})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), results
	}

	fmt.Printf("4 real workers, rank %d throttled by %v per plane, %d phases\n\n", *slowRank, *perPlane, *phases)

	elapsedNone, resNone := run(nil)
	fmt.Printf("no remapping:       %8.2fs  planes %v\n", elapsedNone.Seconds(), finalPlanes(resNone))

	fpol := balance.NewFiltered(p.NY * p.NZ)
	fpol.Cfg.Interval = 5 // react quickly in a short demo
	fpol.Cfg.HistoryK = 3
	elapsedFilt, resFilt := run(fpol)
	fmt.Printf("filtered remapping: %8.2fs  planes %v\n", elapsedFilt.Seconds(), finalPlanes(resFilt))

	fmt.Printf("\nreal wall-clock improvement: %.0f%%\n",
		100*(elapsedNone.Seconds()-elapsedFilt.Seconds())/elapsedNone.Seconds())
	fmt.Println("(the filtered scheme drained the throttled worker's planes onto its neighbors)")
}

func finalPlanes(results []*parlbm.Result) []int {
	out := make([]int, len(results))
	for _, r := range results {
		out[r.Rank] = r.FinalCount
	}
	return out
}
