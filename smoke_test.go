package microslip_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// mains lists every buildable entry point in the repository.
var mains = []string{
	"./cmd/benchtables",
	"./cmd/clustersim",
	"./cmd/lbmbench",
	"./cmd/slipsim",
	"./examples/groovedwall",
	"./examples/liveremap",
	"./examples/nondedicated",
	"./examples/poiseuille",
	"./examples/quickstart",
	"./examples/slipchannel",
}

func goTool(t *testing.T) string {
	t.Helper()
	gobin := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(gobin); err != nil {
		var lookErr error
		gobin, lookErr = exec.LookPath("go")
		if lookErr != nil {
			t.Skipf("go tool unavailable: %v", lookErr)
		}
	}
	return gobin
}

// Every cmd/ and examples/ main must build.
func TestMainsBuild(t *testing.T) {
	gobin := goTool(t)
	bin := t.TempDir()
	for _, dir := range mains {
		dir := dir
		t.Run(strings.TrimPrefix(dir, "./"), func(t *testing.T) {
			t.Parallel()
			out := filepath.Join(bin, filepath.Base(dir))
			cmd := exec.Command(gobin, "build", "-o", out, dir)
			cmd.Dir = "."
			if msg, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("build %s: %v\n%s", dir, err, msg)
			}
		})
	}
}

// The quickstart must run end to end on a tiny grid and print the
// headline physics numbers.
func TestQuickstartRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a physics simulation")
	}
	gobin := goTool(t)
	bin := filepath.Join(t.TempDir(), "quickstart")
	build := exec.Command(gobin, "build", "-o", bin, "./examples/quickstart")
	if msg, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build quickstart: %v\n%s", err, msg)
	}
	run := exec.Command(bin, "-nx", "6", "-ny", "24", "-nz", "6", "-steps", "200")
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart run: %v\n%s", err, out)
	}
	for _, frag := range []string{
		"water density at the wall",
		"apparent slip",
		"free-stream velocity",
	} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("quickstart output lacks %q:\n%s", frag, out)
		}
	}
}
