// Package microslip reproduces "Parallel Simulation of Fluid Slip in a
// Microchannel" (Zhou, Zhu, Petzold, Yang; IPPS 2004): a multicomponent
// lattice Boltzmann simulation of apparent fluid slip in a hydrophobic
// microchannel, parallelized by slice domain decomposition and load
// balanced with the paper's filtered dynamic remapping of lattice
// points.
//
// This package is the curated public surface; the implementation lives
// in the internal packages:
//
//   - internal/lbm       — D3Q19 Shan-Chen multicomponent LBM kernels
//   - internal/parlbm    — the distributed solver with live plane migration
//   - internal/comm      — the MPI-like message-passing substrate
//   - internal/core      — filtered dynamic remapping (the contribution)
//   - internal/balance   — the remapping schemes compared in the paper
//   - internal/vcluster  — the calibrated virtual 20-node cluster
//   - internal/experiments — one runner per table/figure of Section 4
//
// Quick start: simulate fluid slip at reduced scale and print the
// near-wall profiles:
//
//	res, err := microslip.RunSlipPhysics(microslip.DefaultPhysics())
//	if err != nil { ... }
//	fmt.Print(res.Table())
package microslip

import (
	"microslip/internal/balance"
	"microslip/internal/core"
	"microslip/internal/experiments"
	"microslip/internal/lbm"
	"microslip/internal/parlbm"
	"microslip/internal/vcluster"
)

// Physics simulation (Section 2 of the paper).
type (
	// FluidParams configures the multicomponent LBM simulation.
	FluidParams = lbm.Params
	// Component is one fluid of the Shan-Chen mixture.
	Component = lbm.Component
	// Sim is the double-precision sequential solver.
	Sim = lbm.Sim
	// Solver is the precision-agnostic sequential solver interface;
	// NewSolver dispatches on FluidParams.Precision (F64 or F32).
	Solver = lbm.Solver
	// Precision selects the solver's scalar type (F64 or F32).
	Precision = lbm.Precision
	// PhysicsSetup parameterizes the Figure 6/7 experiment.
	PhysicsSetup = experiments.PhysicsSetup
	// PhysicsResult carries the density and velocity profiles.
	PhysicsResult = experiments.PhysicsResult
)

// WaterAirChannel returns the paper's two-component hydrophobic
// microchannel setup at the given resolution.
func WaterAirChannel(nx, ny, nz int) *FluidParams { return lbm.WaterAir(nx, ny, nz) }

// NewSim creates a double-precision sequential simulation.
func NewSim(p *FluidParams) (*Sim, error) { return lbm.NewSim(p) }

// Solver precisions.
const (
	F64 = lbm.F64
	F32 = lbm.F32
)

// NewSolver creates the sequential solver matching p.Precision.
func NewSolver(p *FluidParams) (Solver, error) { return lbm.NewSolver(p) }

// DefaultPhysics returns the reduced-scale slip experiment setup.
func DefaultPhysics() PhysicsSetup { return experiments.DefaultPhysics() }

// RunSlipPhysics reproduces Figures 6 and 7.
func RunSlipPhysics(s PhysicsSetup) (*PhysicsResult, error) {
	return experiments.RunSlipPhysics(s)
}

// Parallel solver (Section 2.2) and remapping schemes (Section 3).
type (
	// ParallelOptions configures a distributed run.
	ParallelOptions = parlbm.Options
	// ParallelResult is one rank's outcome.
	ParallelResult = parlbm.Result
	// Policy is a dynamic remapping scheme.
	Policy = balance.Policy
	// FilteredConfig holds the filtered scheme's tunables.
	FilteredConfig = core.Config
)

// RunParallel executes the domain-decomposed solver over an in-process
// communicator group and returns the gathered fields from rank 0.
var RunParallel = parlbm.RunParallel

// RunParallelTCP is RunParallel over TCP loopback.
var RunParallelTCP = parlbm.RunParallelTCP

// NewFilteredPolicy returns the paper's filtered dynamic remapping for
// lattices whose 2-D planes hold planePoints points.
func NewFilteredPolicy(planePoints int) Policy { return balance.NewFiltered(planePoints) }

// NewConservativePolicy returns the conservative baseline.
func NewConservativePolicy(planePoints int) Policy { return balance.NewConservative(planePoints) }

// NewGlobalPolicy returns the global-exchange baseline.
func NewGlobalPolicy(planePoints int) Policy { return balance.NewGlobal(planePoints) }

// NoRemapPolicy returns the static-decomposition baseline.
func NoRemapPolicy() Policy { return balance.NoRemap{} }

// PolicyByName resolves none|filtered|conservative|global.
var PolicyByName = balance.ByName

// Virtual cluster and canned experiments (Section 4).
type (
	// ClusterSetup fixes the virtual-cluster parameters.
	ClusterSetup = experiments.ClusterSetup
	// ClusterConfig is a raw virtual-cluster run configuration.
	ClusterConfig = vcluster.Config
	// ClusterResult is a virtual-cluster run outcome.
	ClusterResult = vcluster.Result
	// SpeedTrace is a node's effective-speed function.
	SpeedTrace = vcluster.SpeedTrace
)

// PaperSetup returns the paper's 20-node experimental configuration.
func PaperSetup() ClusterSetup { return experiments.PaperSetup() }

// RunCluster executes one virtual-cluster simulation.
var RunCluster = vcluster.Run

// DefaultClusterConfig returns the calibrated virtual-cluster
// configuration for the paper's 400-plane lattice.
var DefaultClusterConfig = vcluster.DefaultConfig

// Workload constructors for the paper's three disturbance patterns.
var (
	Dedicated       = vcluster.Dedicated
	FixedSlowNodes  = vcluster.FixedSlowNodes
	DutyCycleNode   = vcluster.DutyCycleNode
	TransientSpikes = vcluster.TransientSpikes
	SpreadSlowNodes = vcluster.SpreadSlowNodes
)

// Experiment runners, one per table/figure of the evaluation.
var (
	RunFig3         = experiments.RunFig3
	RunFig8         = experiments.RunFig8
	RunFig9         = experiments.RunFig9
	RunFig10        = experiments.RunFig10
	RunTable1       = experiments.RunTable1
	RunSpeedupCurve = experiments.RunSpeedupCurve
)
