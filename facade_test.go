package microslip_test

import (
	"strings"
	"testing"

	"microslip"
)

// The facade must support the README's advertised flows end to end.
func TestFacadePhysicsFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("physics run")
	}
	setup := microslip.PhysicsSetup{NX: 8, NY: 32, NZ: 8, Steps: 600, SampleZ: 4}
	res, err := microslip.RunSlipPhysics(setup)
	if err != nil {
		t.Fatal(err)
	}
	if res.WaterDensity[0] >= 1 {
		t.Errorf("no depletion via facade: %.4f", res.WaterDensity[0])
	}
	if !strings.Contains(res.Table(), "apparent slip") {
		t.Error("facade table missing slip line")
	}
}

func TestFacadeClusterFlow(t *testing.T) {
	pol := microslip.NewFilteredPolicy(4000)
	cfg := microslip.DefaultClusterConfig(pol,
		microslip.FixedSlowNodes(20, []int{9}), 150)
	run, err := microslip.RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Speedup() < 5 {
		t.Errorf("implausible speedup %.2f", run.Speedup())
	}
	none, err := microslip.RunCluster(microslip.DefaultClusterConfig(
		microslip.NoRemapPolicy(), microslip.FixedSlowNodes(20, []int{9}), 150))
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalTime >= none.TotalTime {
		t.Errorf("filtered %.1f >= none %.1f via facade", run.TotalTime, none.TotalTime)
	}
}

func TestFacadePolicyConstructors(t *testing.T) {
	for _, pol := range []microslip.Policy{
		microslip.NewFilteredPolicy(4000),
		microslip.NewConservativePolicy(4000),
		microslip.NewGlobalPolicy(4000),
		microslip.NoRemapPolicy(),
	} {
		if pol.Name() == "" {
			t.Error("unnamed policy")
		}
	}
	if _, err := microslip.PolicyByName("filtered", 4000); err != nil {
		t.Error(err)
	}
	if _, err := microslip.PolicyByName("nope", 4000); err == nil {
		t.Error("bad policy name accepted")
	}
}

func TestFacadeParallelSolver(t *testing.T) {
	p := microslip.WaterAirChannel(8, 8, 6)
	fields, results, err := microslip.RunParallel(p, 2, microslip.ParallelOptions{Phases: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || len(results) != 2 {
		t.Fatalf("facade parallel run returned %d fields, %d results", len(fields), len(results))
	}
	// Compare against the sequential facade run.
	s, err := microslip.NewSim(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	for x := 0; x < p.NX; x++ {
		a := s.Plane(0, x)
		b := fields[0].Plane(x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("facade parallel diverged at plane %d index %d", x, i)
			}
		}
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if got := len(microslip.Dedicated(7)); got != 7 {
		t.Errorf("Dedicated(7) has %d traces", got)
	}
	traces := microslip.TransientSpikes(10, 2, 100, 3)
	if len(traces) != 10 {
		t.Errorf("TransientSpikes has %d traces", len(traces))
	}
	if idx := microslip.SpreadSlowNodes(20, 1); idx[0] != 10 {
		t.Errorf("SpreadSlowNodes center = %d", idx[0])
	}
	if microslip.PaperSetup().P != 20 {
		t.Error("PaperSetup is not the 20-node configuration")
	}
}
