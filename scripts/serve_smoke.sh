#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the slipd job server.
#
# Boots slipd on an ephemeral port, pushes a burst of small jobs through
# it with loadgen, leaves long jobs in flight, SIGTERMs the server, and
# asserts the graceful-drain contract:
#
#   1. the loadgen burst completes with every job done,
#   2. slipd exits 0 after the signal (the drain finished),
#   3. every in-flight job is persisted as "interrupted" and resumable,
#      with its checkpoint artifact (state.ckpt) on disk,
#   4. a restarted slipd over the same data dir resumes one of them to
#      completion.
#
# Used by `make serve-smoke` and the serve-smoke CI job.
set -euo pipefail

cd "$(dirname "$0")/.."

BURST_JOBS="${BURST_JOBS:-40}"
BURST_CONCURRENCY="${BURST_CONCURRENCY:-16}"

work="$(mktemp -d)"
bin="$work/bin"
data="$work/data"
mkdir -p "$bin"
trap 'kill "$SLIPD_PID" 2>/dev/null || true; rm -rf "$work"' EXIT

echo "== build"
go build -o "$bin/slipd" ./cmd/slipd
go build -o "$bin/loadgen" ./cmd/loadgen

echo "== boot slipd"
"$bin/slipd" -addr 127.0.0.1:0 -addr-file "$work/addr" -data "$data" -pool 4 \
    >"$work/slipd.log" 2>&1 &
SLIPD_PID=$!
for _ in $(seq 1 50); do
    [ -s "$work/addr" ] && break
    sleep 0.1
done
[ -s "$work/addr" ] || { echo "FAIL: slipd never wrote its address"; cat "$work/slipd.log"; exit 1; }
ADDR="$(cat "$work/addr")"
echo "   listening on $ADDR"

echo "== burst: $BURST_JOBS small jobs x $BURST_CONCURRENCY clients"
"$bin/loadgen" -addr "$ADDR" -jobs "$BURST_JOBS" -concurrency "$BURST_CONCURRENCY" -steps 40

echo "== leave long jobs in flight, then SIGTERM"
"$bin/loadgen" -addr "$ADDR" -jobs 4 -concurrency 4 -submit-only \
    -nx 8 -ny 32 -nz 8 -steps 400000
sleep 1
kill -TERM "$SLIPD_PID"
drain_rc=0
wait "$SLIPD_PID" || drain_rc=$?
if [ "$drain_rc" -ne 0 ]; then
    echo "FAIL: slipd exited $drain_rc after SIGTERM (want 0: graceful drain)"
    cat "$work/slipd.log"
    exit 1
fi
echo "   slipd drained cleanly (exit 0)"

echo "== assert in-flight jobs checkpointed"
interrupted=$(grep -l '"state": "interrupted"' "$data"/jobs/*/status.json | wc -l)
resumable=$(grep -l '"resumable": true' "$data"/jobs/*/status.json | wc -l)
ckpts=$(find "$data" -name state.ckpt | wc -l)
echo "   interrupted=$interrupted resumable=$resumable checkpoints=$ckpts"
if [ "$interrupted" -lt 1 ] || [ "$resumable" -lt 1 ] || [ "$ckpts" -lt 1 ]; then
    echo "FAIL: drain left no resumable interrupted jobs"
    exit 1
fi

echo "== restart and resume one interrupted job"
resume_id="$(basename "$(dirname "$(grep -l '"state": "interrupted"' "$data"/jobs/*/status.json | head -1)")")"
rm -f "$work/addr"
"$bin/slipd" -addr 127.0.0.1:0 -addr-file "$work/addr" -data "$data" -pool 2 \
    >>"$work/slipd.log" 2>&1 &
SLIPD_PID=$!
for _ in $(seq 1 50); do
    [ -s "$work/addr" ] && break
    sleep 0.1
done
ADDR="$(cat "$work/addr")"
job="$(curl -sf -X POST "http://$ADDR/jobs" -d "{\"steps\":60,\"resume\":\"$resume_id\"}")"
id="$(printf '%s' "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
final="$(curl -sf "http://$ADDR/jobs/$id/wait?timeout_ms=60000")"
state="$(printf '%s' "$final" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')"
start_step="$(printf '%s' "$final" | sed -n 's/.*"start_step": \([0-9]*\).*/\1/p')"
echo "   resume of $resume_id: state=$state start_step=${start_step:-0}"
if [ "$state" != "done" ] || [ "${start_step:-0}" -lt 1 ]; then
    echo "FAIL: resume did not continue from the interrupt checkpoint"
    printf '%s\n' "$final"
    exit 1
fi
kill -TERM "$SLIPD_PID"
wait "$SLIPD_PID" || { echo "FAIL: second drain not clean"; exit 1; }

echo "PASS: serve smoke (burst, graceful drain, checkpointed interrupts, resume)"
