// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 4), plus the ablation studies and kernel
// microbenchmarks. Each experiment benchmark reports the headline
// quantity of its table/figure via b.ReportMetric, so `go test
// -bench=.` regenerates the paper's numbers alongside timing.
//
// The experiment benchmarks run reduced phase counts (the shapes are
// phase-count independent after the remapping transient); use
// cmd/benchtables for paper-scale sweeps.
package microslip_test

import (
	"testing"

	"microslip/internal/balance"
	"microslip/internal/comm"
	"microslip/internal/core"
	"microslip/internal/experiments"
	"microslip/internal/lattice"
	"microslip/internal/lbm"
	"microslip/internal/parlbm"
	"microslip/internal/vcluster"
)

// --- Evaluation-section benchmarks (one per table/figure) ---

// BenchmarkFig3Disturbance regenerates Figure 3: execution time and
// overhead vs the duty cycle of a competing job on one node.
func BenchmarkFig3Disturbance(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(setup, 300, []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Overhead[len(res.Overhead)-1], "overhead_pct_at_full_duty")
	}
}

// BenchmarkFig6DensityProfiles regenerates Figure 6: near-wall water
// depletion and air/vapor enrichment.
func BenchmarkFig6DensityProfiles(b *testing.B) {
	setup := experiments.PhysicsSetup{NX: 12, NY: 32, NZ: 10, Steps: 600, SampleZ: 5}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSlipPhysics(setup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WaterDensity[0], "water_wall_over_bulk")
		b.ReportMetric(res.AirDensity[0], "air_wall_over_bulk")
	}
}

// BenchmarkFig7VelocityProfiles regenerates Figure 7: the normalized
// streamwise velocity with and without hydrophobic wall forces, and the
// apparent slip.
func BenchmarkFig7VelocityProfiles(b *testing.B) {
	setup := experiments.PhysicsSetup{NX: 12, NY: 32, NZ: 10, Steps: 600, SampleZ: 5}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSlipPhysics(setup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SlipPercent, "slip_pct")
	}
}

// BenchmarkSpeedupDedicated regenerates the Section 4.2 scaling claim
// (speedup 18.97 on 20 dedicated nodes).
func BenchmarkSpeedupDedicated(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSpeedupCurve(setup, 300, []int{20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup[0], "speedup_20_nodes")
	}
}

// BenchmarkFig8SpeedupEfficiency regenerates Figure 8: speedup and
// normalized efficiency vs slow-node count, filtered vs none.
func BenchmarkFig8SpeedupEfficiency(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(setup, 2000, 5)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.M) - 1
		b.ReportMetric(res.SpeedupFilt[last], "speedup_filtered_5_slow")
		b.ReportMetric(res.EffFilt[last], "norm_efficiency_5_slow")
	}
}

// BenchmarkFig9Profiles regenerates Figure 9: the per-scheme execution
// profile with one fixed slow node.
func BenchmarkFig9Profiles(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(setup, 600)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Times["filtered"], "filtered_s")
		b.ReportMetric(res.Times["no-remap"], "no_remap_s")
		b.ReportMetric(res.Times["conservative"], "conservative_s")
	}
}

// BenchmarkFig10Schemes regenerates Figure 10: execution time vs
// slow-node count for all four schemes.
func BenchmarkFig10Schemes(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(setup, 600, 5)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.M) - 1
		b.ReportMetric(res.Times["filtered"][last], "filtered_5_slow_s")
		b.ReportMetric(res.Times["global"][last], "global_5_slow_s")
	}
}

// BenchmarkTable1TransientSpikes regenerates Table 1: slowdown under
// random 1-4 s background spikes.
func BenchmarkTable1TransientSpikes(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(setup, 100, []float64{1, 2, 3, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Slowdown["filtered"][3], "filtered_4s_pct")
		b.ReportMetric(res.Slowdown["global"][3], "global_4s_pct")
	}
}

// --- Ablation benchmarks (design choices of Section 3) ---

func BenchmarkAblationPredictors(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationPredictors(setup, 300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].PlanesMoved), "harmonic_planes_moved")
		b.ReportMetric(float64(res.Rows[1].PlanesMoved), "lastvalue_planes_moved")
	}
}

func BenchmarkAblationOverRedistribution(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationOverRedistribution(setup, 300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Time, "kappa_on_s")
		b.ReportMetric(res.Rows[2].Time, "conservative_s")
	}
}

func BenchmarkAblationLaziness(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationLaziness(setup, 300); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	setup := experiments.PaperSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationThreshold(setup, 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWallForce sweeps the hydrophobic force amplitude on
// the 2-D solver (the paper calls its magnitude "not well understood").
func BenchmarkAblationWallForce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWallForceSensitivity(8, 40, 800,
			[]float64{0.1, 0.2, 0.4}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[1].SlipPercent, "slip_pct_at_amp02")
	}
}

// --- Kernel and substrate microbenchmarks ---

// BenchmarkKernelCollide measures the multicomponent collision kernel
// on one 200x20 plane (the paper's plane size).
func BenchmarkKernelCollide(b *testing.B) {
	p := lbm.WaterAir(4, 200, 20)
	k := lbm.NewKernel(p)
	mk := func() [][]float64 {
		planes := make([][]float64, 2)
		for c := range planes {
			planes[c] = make([]float64, k.PlaneLen())
			k.InitEquilibrium(planes[c], 1.0)
		}
		return planes
	}
	f := mk()
	out := mk()
	n := [][]float64{make([]float64, k.PlaneCells()), make([]float64, k.PlaneCells())}
	k.Densities(f, n)
	b.SetBytes(int64(2 * k.PlaneLen() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Collide(n, n, n, f, out)
	}
}

// BenchmarkKernelStream measures pull streaming on one plane.
func BenchmarkKernelStream(b *testing.B) {
	p := lbm.WaterAir(4, 200, 20)
	k := lbm.NewKernel(p)
	mk := func() [][]float64 {
		planes := make([][]float64, 2)
		for c := range planes {
			planes[c] = make([]float64, k.PlaneLen())
			k.InitEquilibrium(planes[c], 1.0)
		}
		return planes
	}
	f := mk()
	out := mk()
	b.SetBytes(int64(2 * k.PlaneLen() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Stream(f, f, f, out)
	}
}

// BenchmarkSequentialStep measures a full sequential phase on a small
// channel, in lattice-point updates per second.
func BenchmarkSequentialStep(b *testing.B) {
	p := lbm.WaterAir(16, 40, 12)
	s, err := lbm.NewSim(p)
	if err != nil {
		b.Fatal(err)
	}
	points := p.NX * p.NY * p.NZ
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.ReportMetric(float64(points)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkParallelStep measures the distributed solver (4 ranks,
// in-process transport) per phase.
func BenchmarkParallelStep(b *testing.B) {
	p := lbm.WaterAir(16, 40, 12)
	b.ResetTimer()
	_, _, err := parlbm.RunParallel(p, 4, parlbm.Options{Phases: b.N})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCommChanExchange measures the neighbor halo-exchange pattern
// on the in-process transport with paper-sized halo planes.
func BenchmarkCommChanExchange(b *testing.B) {
	benchCommExchange(b, func() ([]comm.Comm, func(), error) {
		f := comm.NewFabric(2)
		return f.Endpoints(), f.Close, nil
	})
}

// BenchmarkCommTCPExchange measures the same pattern over TCP loopback.
func BenchmarkCommTCPExchange(b *testing.B) {
	benchCommExchange(b, func() ([]comm.Comm, func(), error) {
		return comm.NewTCPGroup(2)
	})
}

// BenchmarkCommReliableExchange measures the halo exchange through the
// resilience wrapper with no faults. Compare allocs/op against
// BenchmarkCommChanExchange: the framing layer reuses its send buffer,
// so the fault-free hot path must not add allocations.
func BenchmarkCommReliableExchange(b *testing.B) {
	benchCommExchange(b, func() ([]comm.Comm, func(), error) {
		f := comm.NewFabric(2)
		return comm.WithResilienceAll(f.Endpoints(), comm.DefaultResilience()), f.Close, nil
	})
}

func benchCommExchange(b *testing.B, mk func() ([]comm.Comm, func(), error)) {
	eps, shutdown, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	defer shutdown()
	b.ReportAllocs()
	plane := make([]float64, 200*20*19*2) // paper-sized halo: both components
	b.SetBytes(int64(len(plane) * 8 * 2))
	done := make(chan error, 1)
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			if _, err := eps[1].SendRecv(0, plane, 0, 1); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < b.N; i++ {
		if _, err := eps[0].SendRecv(1, plane, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFilteredDecide measures the remapping decision math for a
// 20-node array.
func BenchmarkFilteredDecide(b *testing.B) {
	cfg := core.DefaultConfig(4000)
	planes := make([]int, 20)
	times := make([]float64, 20)
	for i := range planes {
		planes[i] = 20
		times[i] = 0.4
	}
	times[9] = 1.2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		desires := cfg.DecideAll(planes, times)
		_ = cfg.Resolve(desires, planes)
	}
}

// BenchmarkVClusterRun measures the virtual-cluster simulator itself
// (600 phases, 20 nodes, filtered policy).
func BenchmarkVClusterRun(b *testing.B) {
	traces := vcluster.FixedSlowNodes(20, []int{10})
	for i := 0; i < b.N; i++ {
		cfg := vcluster.DefaultConfig(balance.NewFiltered(4000), traces, 600)
		if _, err := vcluster.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatticeEquilibrium measures the equilibrium evaluation.
func BenchmarkLatticeEquilibrium(b *testing.B) {
	var feq [lattice.Q19]float64
	for i := 0; i < b.N; i++ {
		lattice.Equilibrium(1.0, 0.01, 0.002, 0.003, &feq)
	}
}
